#include "mappers/mapper.hpp"

#include <chrono>

namespace mse {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace

SearchTracker::SearchTracker(const EvalFn &eval, const SearchBudget &budget)
    : eval_(eval), budget_(budget), t0_(nowSeconds())
{
}

double
SearchTracker::elapsedSeconds() const
{
    return nowSeconds() - t0_;
}

bool
SearchTracker::exhausted() const
{
    if (log_.samples >= budget_.max_samples)
        return true;
    return elapsedSeconds() >= budget_.max_seconds;
}

const CostResult &
SearchTracker::evaluate(const Mapping &m)
{
    last_cost_ = eval_(m);
    ++log_.samples;
    if (last_cost_.valid && last_cost_.edp < best_edp_) {
        best_edp_ = last_cost_.edp;
        best_mapping_ = m;
        best_cost_ = last_cost_;
    }
    log_.best_edp_per_sample.push_back(best_edp_);
    log_.seconds_per_sample.push_back(elapsedSeconds());
    return last_cost_;
}

void
SearchTracker::endGeneration()
{
    log_.best_edp_per_generation.push_back(best_edp_);
}

SearchResult
SearchTracker::takeResult()
{
    SearchResult res;
    res.best_mapping = best_mapping_;
    res.best_cost = best_cost_;
    res.log = std::move(log_);
    return res;
}

} // namespace mse

#include "mappers/mapper.hpp"

#include <algorithm>
#include <chrono>

#include "common/thread_pool.hpp"
#include "mappers/gamma.hpp"
#include "model/batch_eval.hpp"
#include "mappers/local_search.hpp"
#include "mappers/random_pruned.hpp"
#include "mappers/standard_ga.hpp"

namespace mse {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace

MapperFactory
makeMapperFactory(const std::string &name)
{
    if (name == "gamma")
        return [] { return std::make_unique<GammaMapper>(); };
    if (name == "standard-ga")
        return [] { return std::make_unique<StandardGaMapper>(); };
    if (name == "random-pruned")
        return [] { return std::make_unique<RandomPrunedMapper>(); };
    if (name == "annealing")
        return [] { return std::make_unique<SimulatedAnnealingMapper>(); };
    if (name == "hill-climb")
        return [] { return std::make_unique<HillClimbMapper>(); };
    return {};
}

SearchTracker::SearchTracker(const EvalFn &eval, const SearchBudget &budget)
    : eval_(eval), budget_(budget), t0_(nowSeconds())
{
}

double
SearchTracker::elapsedSeconds() const
{
    return nowSeconds() - t0_;
}

bool
SearchTracker::exhausted() const
{
    if (log_.samples >= budget_.max_samples)
        return true;
    if (budget_.cancelRequested())
        return true;
    return elapsedSeconds() >= budget_.max_seconds;
}

void
SearchTracker::record(const Mapping &m, const CostResult &cost)
{
    record(m, cost, elapsedSeconds());
}

void
SearchTracker::record(const Mapping &m, const CostResult &cost,
                      double secs)
{
    ++log_.samples;
    if (cost.valid && cost.edp < best_edp_) {
        best_edp_ = cost.edp;
        best_mapping_ = m;
        best_cost_ = cost;
    }
    log_.best_edp_per_sample.push_back(best_edp_);
    log_.seconds_per_sample.push_back(secs);
}

const CostResult &
SearchTracker::evaluate(const Mapping &m)
{
    last_cost_ = eval_(m);
    record(m, last_cost_);
    return last_cost_;
}

const std::vector<CostResult> &
SearchTracker::evaluateBatch(const std::vector<Mapping> &batch,
                             const std::vector<EvalHint> *hints)
{
    // Truncate to the remaining sample budget so batch-converted mappers
    // never overshoot max_samples; the candidate sequence (and thus the
    // caller's RNG stream) is unaffected by the truncation point.
    const size_t remaining = budget_.max_samples > log_.samples
        ? budget_.max_samples - log_.samples
        : 0;
    const size_t n = std::min(batch.size(), remaining);

    if (const BatchableEval *be = eval_.target<BatchableEval>()) {
        // Pipelined batch evaluator: hand the whole batch (and hints)
        // over in one call; it fans out internally and writes every
        // slot, so resize-without-clearing reuses result capacity.
        batch_results_.resize(n);
        const EvalHint *h =
            hints && hints->size() >= n ? hints->data() : nullptr;
        be->impl->evaluateBatch(batch.data(), h, n,
                                batch_results_.data());
        const double secs = elapsedSeconds();
        for (size_t i = 0; i < n; ++i)
            record(batch[i], batch_results_[i], secs);
        if (n > 0)
            last_cost_ = batch_results_[n - 1];
        return batch_results_;
    }

    batch_results_.assign(n, CostResult{});

    ThreadPool &pool = ThreadPool::global();
    if (n > 1 && pool.threads() > 1) {
        pool.parallelFor(n, [&](size_t i) {
            batch_results_[i] = eval_(batch[i]);
        });
    } else {
        for (size_t i = 0; i < n; ++i)
            batch_results_[i] = eval_(batch[i]);
    }
    // Deterministic reduce in submission order.
    const double secs = elapsedSeconds();
    for (size_t i = 0; i < n; ++i)
        record(batch[i], batch_results_[i], secs);
    if (n > 0)
        last_cost_ = batch_results_[n - 1];
    return batch_results_;
}

void
SearchTracker::endGeneration()
{
    log_.best_edp_per_generation.push_back(best_edp_);
}

SearchResult
SearchTracker::takeResult()
{
    SearchResult res;
    res.best_mapping = best_mapping_;
    res.best_cost = best_cost_;
    res.log = std::move(log_);
    return res;
}

} // namespace mse

/**
 * @file
 * ReplicationAgent: asynchronous best-mapping shipping between
 * daemons, with hinted handoff and anti-entropy re-sync.
 *
 * Every local store improvement (MseService's on_improved hook) is
 * enqueued for each ring successor of the record's key and shipped in
 * the background over the normal wire protocol ({"type":"replicate"}).
 * The receiving daemon merges best-score-wins (MappingStore::
 * mergeEntry), which makes the whole scheme safe by construction:
 * records are monotone per key, so duplicates, reordering, and
 * crash-replay are all no-ops. Losing the async queue on SIGKILL
 * costs only *redundancy* (the owner still has the record); the chaos
 * harness Phases 5–6 certify that no *acknowledged* record is lost
 * cluster-wide, partitions included.
 *
 * Mechanics:
 *  - One worker thread per peer, each draining a bounded per-peer
 *    queue in batches over a persistent connection. A slow or dead
 *    peer therefore cannot stall shipping to healthy ones.
 *  - Retry with capped exponential backoff (deterministic, no RNG —
 *    replicationNextBackoffMs is a pure function the tests replay);
 *    the failed batch stays queued and is re-shipped after the
 *    backoff, so transient faults (including MSE_FAULTS-injected ones
 *    — all socket I/O goes through the sys_io seam via net.hpp) only
 *    delay replication. A structured `unavailable` refusal counts as
 *    a retryable failure; other refusals drop the batch.
 *  - Bounded queues drop the *oldest* records on overflow (counted in
 *    stats): under sustained overload the freshest bests win, and a
 *    dropped record is re-shipped naturally the next time its key
 *    improves anywhere.
 *  - Entries carry monotonically increasing per-peer sequence
 *    numbers; an ack pops only entries up to the last shipped seq, so
 *    an overflow drop concurrent with an in-flight batch can never
 *    pop a record that was not actually sent.
 *  - Hinted handoff: when the health hook reports a peer Down, its
 *    queue spills into a bounded HintLog (file-backed through sys_io,
 *    so hints survive restarts) instead of spinning backoff against a
 *    dead socket; the worker drains the hints oldest-first once the
 *    peer leaves Down.
 *  - Anti-entropy: requestSync() marks a peer; its worker then sends
 *    {"type":"sync"} with the local per-key best-score digest
 *    (local_digest hook) and merges the returned records through
 *    apply_entries (= applyReplication, which never re-triggers
 *    on_improved — a sync round moves data one way and cannot loop).
 *    Rounds repeat until one returns no records, so a bounded reply
 *    cap on the responder still converges.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/health.hpp"
#include "cluster/hints.hpp"
#include "common/json.hpp"
#include "common/thread_annotations.hpp"
#include "service/mapping_store.hpp"

namespace mse {

/** Tuning knobs of the replication agent. */
struct ReplicationConfig
{
    /** Records shipped per replicate message. */
    size_t max_batch = 32;

    /** Pending records per peer before drop-oldest kicks in. */
    size_t queue_capacity = 1024;

    /** Idle wait between queue checks, ms (also the flush latency
     *  ceiling for a lone record). */
    int flush_interval_ms = 20;

    /** First retry backoff after a failed ship, ms. */
    int backoff_base_ms = 100;

    /** Backoff ceiling, ms. */
    int backoff_cap_ms = 2000;

    /** Per-I/O timeout when talking to a peer, ms. */
    int io_timeout_ms = 2000;

    /** Hints kept per Down peer before drop-oldest (memory + file). */
    size_t hint_capacity = 4096;

    /** Hint-file path prefix (e.g. "<store>."); empty = memory-only
     *  hint queues. See hintFilePath(). */
    std::string hint_path_prefix;
};

/**
 * Seams the agent reaches back through. Every hook may be null:
 * a null health_of means every peer always looks Up (the pre-health
 * behavior), null digest/apply disable anti-entropy rounds.
 * Set at construction — workers start inside the constructor.
 */
struct ReplicationHooks
{
    /** Current health of a peer (HealthMonitor::healthOf). */
    std::function<PeerHealth(const std::string &addr)> health_of;

    /** Local per-key best scores (MappingStore::bestScores). */
    std::function<std::vector<std::pair<std::string, double>>()>
        local_digest;

    /** Merge records pulled by a sync round; returns merged count
     *  (MseService::applyReplication). */
    std::function<size_t(const std::vector<StoreEntry> &entries)>
        apply_entries;
};

/**
 * The deterministic retry schedule: 0 (healthy) steps to base, then
 * doubles to the cap. Pure — tests replay the exact sequence.
 */
inline int
replicationNextBackoffMs(int prev_ms, const ReplicationConfig &cfg)
{
    if (prev_ms <= 0)
        return cfg.backoff_base_ms;
    const int next = prev_ms * 2;
    return next < cfg.backoff_cap_ms ? next : cfg.backoff_cap_ms;
}

/** Ships local store improvements to ring successors. */
class ReplicationAgent
{
  public:
    ReplicationAgent(const ClusterConfig &cluster,
                     ReplicationConfig cfg = {},
                     ReplicationHooks hooks = {});
    ~ReplicationAgent();

    ReplicationAgent(const ReplicationAgent &) = delete;
    ReplicationAgent &operator=(const ReplicationAgent &) = delete;

    /**
     * Queue one improved record for every ring successor of its key
     * (the non-self members of replicasOf(key, R)). Thread-safe,
     * non-blocking; called from MseService executor threads.
     */
    void enqueue(const StoreEntry &e);

    /**
     * Schedule an anti-entropy round against one peer (no-op for
     * unknown addresses or when the digest/apply hooks are unset).
     * Called at daemon startup (the rejoin pull) and from the health
     * monitor's Down→Up transitions.
     */
    void requestSync(const std::string &addr);

    /** requestSync() against every peer. */
    void requestSyncAll();

    /** Stop the workers. Pending batches are attempted once more
     *  (best effort, bounded by io_timeout_ms); then the queues are
     *  dropped. Idempotent; called by the destructor. */
    void stop();

    /**
     * Stats block for statsJson(): per-peer queue depth, shipped /
     * acked / dropped / failure counters, backoff, health, hint
     * state, and lag (seconds since the oldest still-queued record
     * was enqueued; 0 when drained).
     */
    JsonValue statsJson() const;

    /** Total records waiting across all peers (test hook). */
    size_t queueDepth() const;

    /** Total hints waiting across all peers (test hook). */
    size_t hintDepth() const;

    /** Pending-sync flag of one peer (test hook). */
    bool syncPending(const std::string &addr) const;

  private:
    struct Item
    {
        uint64_t seq = 0;
        double enqueued_at = 0.0; ///< steady-clock seconds (for lag).
        StoreEntry entry;
    };

    /** One ring successor and its ship queue + worker. */
    struct Peer
    {
        std::string addr;
        std::string host;
        uint16_t port = 0;

        mutable Mutex mu;
        std::condition_variable cv;
        std::deque<Item> q GUARDED_BY(mu);
        uint64_t next_seq GUARDED_BY(mu) = 1;
        uint64_t shipped GUARDED_BY(mu) = 0;
        uint64_t acked GUARDED_BY(mu) = 0;
        uint64_t merged GUARDED_BY(mu) = 0;
        uint64_t dropped GUARDED_BY(mu) = 0;
        uint64_t ship_failures GUARDED_BY(mu) = 0;
        uint64_t hints_shipped GUARDED_BY(mu) = 0;
        uint64_t sync_rounds GUARDED_BY(mu) = 0;
        uint64_t sync_pulled GUARDED_BY(mu) = 0;
        int backoff_ms GUARDED_BY(mu) = 0;
        bool sync_pending GUARDED_BY(mu) = false;

        std::unique_ptr<HintLog> hints; ///< Internally locked.

        std::thread worker;
        int fd = -1; ///< Worker-thread-owned persistent connection.
    };

    void workerLoop(Peer &p);
    /** Ship one replicate message (connect if needed, send, await
     *  ack). On success *merged_out gains the peer's merged count and
     *  *acked_out reports whether the peer actually accepted (a
     *  non-retryable structured rejection "succeeds" — the batch is
     *  dropped — without acking). */
    bool shipEntries(Peer &p, const std::vector<StoreEntry> &entries,
                     uint64_t *merged_out, bool *acked_out);
    /** One anti-entropy round. On success *pulled_out is the merged
     *  record count and *more_out whether another round is needed. */
    bool syncRound(Peer &p, size_t *pulled_out, bool *more_out);
    /** Move the pending queue into the hint log (peer is Down). */
    void spillToHints(Peer &p);
    PeerHealth peerHealth(const Peer &p) const;

    ClusterConfig cluster_;
    ShardRing ring_;
    ReplicationConfig cfg_;
    ReplicationHooks hooks_;
    std::vector<std::unique_ptr<Peer>> peers_;
    std::atomic<bool> stopping_{false};
};

} // namespace mse

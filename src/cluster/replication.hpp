/**
 * @file
 * ReplicationAgent: asynchronous best-mapping shipping between
 * daemons.
 *
 * Every local store improvement (MseService's on_improved hook) is
 * enqueued for each ring successor of the record's key and shipped in
 * the background over the normal wire protocol ({"type":"replicate"}).
 * The receiving daemon merges best-score-wins (MappingStore::
 * mergeEntry), which makes the whole scheme safe by construction:
 * records are monotone per key, so duplicates, reordering, and
 * crash-replay are all no-ops. Losing the async queue on SIGKILL
 * costs only *redundancy* (the owner still has the record); the chaos
 * harness Phase 5 certifies that no *acknowledged* record is lost
 * cluster-wide.
 *
 * Mechanics:
 *  - One worker thread per peer, each draining a bounded per-peer
 *    queue in batches over a persistent connection. A slow or dead
 *    peer therefore cannot stall shipping to healthy ones.
 *  - Retry with capped exponential backoff (deterministic, no RNG);
 *    the failed batch stays queued and is re-shipped after the
 *    backoff, so transient faults (including MSE_FAULTS-injected ones
 *    — all socket I/O goes through the sys_io seam via net.hpp) only
 *    delay replication.
 *  - Bounded queues drop the *oldest* records on overflow (counted in
 *    stats): under sustained overload the freshest bests win, and a
 *    dropped record is re-shipped naturally the next time its key
 *    improves anywhere.
 *  - Entries carry monotonically increasing per-peer sequence
 *    numbers; an ack pops only entries up to the last shipped seq, so
 *    an overflow drop concurrent with an in-flight batch can never
 *    pop a record that was not actually sent.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/json.hpp"
#include "common/thread_annotations.hpp"
#include "service/mapping_store.hpp"

namespace mse {

/** Tuning knobs of the replication agent. */
struct ReplicationConfig
{
    /** Records shipped per replicate message. */
    size_t max_batch = 32;

    /** Pending records per peer before drop-oldest kicks in. */
    size_t queue_capacity = 1024;

    /** Idle wait between queue checks, ms (also the flush latency
     *  ceiling for a lone record). */
    int flush_interval_ms = 20;

    /** First retry backoff after a failed ship, ms. */
    int backoff_base_ms = 100;

    /** Backoff ceiling, ms. */
    int backoff_cap_ms = 2000;

    /** Per-I/O timeout when talking to a peer, ms. */
    int io_timeout_ms = 2000;
};

/** Ships local store improvements to ring successors. */
class ReplicationAgent
{
  public:
    ReplicationAgent(const ClusterConfig &cluster,
                     ReplicationConfig cfg = {});
    ~ReplicationAgent();

    ReplicationAgent(const ReplicationAgent &) = delete;
    ReplicationAgent &operator=(const ReplicationAgent &) = delete;

    /**
     * Queue one improved record for every ring successor of its key
     * (the non-self members of replicasOf(key, R)). Thread-safe,
     * non-blocking; called from MseService executor threads.
     */
    void enqueue(const StoreEntry &e);

    /** Stop the workers. Pending batches are attempted once more
     *  (best effort, bounded by io_timeout_ms); then the queues are
     *  dropped. Idempotent; called by the destructor. */
    void stop();

    /**
     * Stats block for statsJson(): per-peer queue depth, shipped /
     * acked / dropped / failure counters, and lag (seconds since the
     * oldest still-queued record was enqueued; 0 when drained).
     */
    JsonValue statsJson() const;

    /** Total records waiting across all peers (test hook). */
    size_t queueDepth() const;

  private:
    struct Item
    {
        uint64_t seq = 0;
        double enqueued_at = 0.0; ///< steady-clock seconds (for lag).
        StoreEntry entry;
    };

    /** One ring successor and its ship queue + worker. */
    struct Peer
    {
        std::string addr;
        std::string host;
        uint16_t port = 0;

        mutable Mutex mu;
        std::condition_variable cv;
        std::deque<Item> q GUARDED_BY(mu);
        uint64_t next_seq GUARDED_BY(mu) = 1;
        uint64_t shipped GUARDED_BY(mu) = 0;
        uint64_t acked GUARDED_BY(mu) = 0;
        uint64_t merged GUARDED_BY(mu) = 0;
        uint64_t dropped GUARDED_BY(mu) = 0;
        uint64_t ship_failures GUARDED_BY(mu) = 0;

        std::thread worker;
        int fd = -1; ///< Worker-thread-owned persistent connection.
    };

    void workerLoop(Peer &p);
    /** Ship one batch (connect if needed, send, await ack). */
    bool shipBatch(Peer &p, const std::vector<Item> &batch);

    ClusterConfig cluster_;
    ShardRing ring_;
    ReplicationConfig cfg_;
    std::vector<std::unique_ptr<Peer>> peers_;
    std::atomic<bool> stopping_{false};
};

} // namespace mse

#include "cluster/shard_ring.hpp"

#include <algorithm>

#include "common/math_util.hpp"

namespace mse {

ShardRing::ShardRing(const std::vector<std::string> &nodes,
                     size_t vnodes)
    : vnodes_(vnodes > 0 ? vnodes : 1)
{
    nodes_ = nodes;
    std::sort(nodes_.begin(), nodes_.end());
    nodes_.erase(std::unique(nodes_.begin(), nodes_.end()),
                 nodes_.end());
    rebuild();
}

void
ShardRing::addNode(const std::string &node)
{
    const auto it =
        std::lower_bound(nodes_.begin(), nodes_.end(), node);
    if (it != nodes_.end() && *it == node)
        return;
    nodes_.insert(it, node);
    rebuild();
}

bool
ShardRing::removeNode(const std::string &node)
{
    const auto it =
        std::lower_bound(nodes_.begin(), nodes_.end(), node);
    if (it == nodes_.end() || *it != node)
        return false;
    nodes_.erase(it);
    rebuild();
    return true;
}

bool
ShardRing::contains(const std::string &node) const
{
    return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

void
ShardRing::rebuild()
{
    points_.clear();
    points_.reserve(nodes_.size() * vnodes_);
    for (uint32_t ni = 0; ni < nodes_.size(); ++ni) {
        for (size_t v = 0; v < vnodes_; ++v) {
            Point p;
            p.hash = fnv1a64(nodes_[ni] + "#" + std::to_string(v));
            p.node = ni;
            points_.push_back(p);
        }
    }
    // Hash ties (astronomically rare, but the ring must stay a pure
    // function of the node set) break on the node name.
    std::sort(points_.begin(), points_.end(),
              [this](const Point &a, const Point &b) {
                  if (a.hash != b.hash)
                      return a.hash < b.hash;
                  return nodes_[a.node] < nodes_[b.node];
              });
}

size_t
ShardRing::pointFor(uint64_t h) const
{
    // First point strictly clockwise of h (wrapping): the canonical
    // consistent-hashing successor rule.
    size_t lo = 0, hi = points_.size();
    while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        if (points_[mid].hash <= h)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo == points_.size() ? 0 : lo;
}

const std::string &
ShardRing::ownerOf(const std::string &key) const
{
    static const std::string kEmpty;
    if (points_.empty())
        return kEmpty;
    return nodes_[points_[pointFor(fnv1a64(key))].node];
}

std::vector<std::string>
ShardRing::replicasOf(const std::string &key, size_t n) const
{
    std::vector<std::string> out;
    if (points_.empty() || n == 0)
        return out;
    const size_t want = std::min(n, nodes_.size());
    out.reserve(want);
    size_t idx = pointFor(fnv1a64(key));
    for (size_t step = 0; step < points_.size() && out.size() < want;
         ++step) {
        const std::string &node =
            nodes_[points_[(idx + step) % points_.size()].node];
        if (std::find(out.begin(), out.end(), node) == out.end())
            out.push_back(node);
    }
    return out;
}

bool
ShardRing::isReplica(const std::string &key, const std::string &node,
                     size_t n) const
{
    const auto reps = replicasOf(key, n);
    return std::find(reps.begin(), reps.end(), node) != reps.end();
}

} // namespace mse

/**
 * @file
 * ClusterClient: client-side routing + failover over a daemon ring.
 *
 * The client derives the same ShardRing the daemons do from the node
 * list (`--cluster a,b,c`), computes the store key of a search request
 * locally (by parsing it with the server's own wire codec — one
 * parser, zero drift), and sends the request straight to the owning
 * shard. Two recovery paths:
 *
 *  - *wrong_shard redirect*: a daemon that does not serve the key
 *    rejects with the owner's address; the client retries there next.
 *    This self-heals a stale client-side node list in one extra hop.
 *  - *failover*: a dead/unreachable owner falls back to the next ring
 *    replica of the key, which holds a replicated copy of the store
 *    entry — a warm start survives the owner's death (the chaos
 *    harness Phase 5 certifies this under SIGKILL storms).
 *
 * One request() call makes a single sweep over the key's candidates
 * (replicas, then redirect targets); retry/backoff policy across
 * sweeps belongs to the caller (mse_client keeps its existing loop).
 */
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"

namespace mse {

/** Routing client over a cluster of mse_serve daemons. */
class ClusterClient
{
  public:
    /** io_timeout_ms bounds each connect-send-receive leg. */
    ClusterClient(ClusterConfig cluster, int io_timeout_ms = 120000);

    /** Outcome of one routed request (a single candidate sweep). */
    struct Result
    {
        /** A reply line was received (it may still carry ok:false —
         *  the caller inspects the payload). */
        bool ok = false;
        std::string reply;     ///< Raw reply line (when ok).
        std::string served_by; ///< Node that answered (when ok).
        std::string error;     ///< Transport failure detail (!ok).
        size_t nodes_tried = 0;
        bool redirected = false; ///< A wrong_shard redirect happened.
    };

    /**
     * Route one request line. Search requests go to the key's replica
     * set in ring order with failover; non-search requests (ping /
     * stats / raw lines the wire codec cannot place) go to every node
     * in order until one answers.
     */
    Result request(const std::string &line);

    /** Send `line` to every node; one (node, Result) per node. */
    std::vector<std::pair<std::string, Result>>
    broadcast(const std::string &line);

    /** Candidate nodes for `line`, in routing order (test hook):
     *  empty when the line is not a routable search. */
    std::vector<std::string> routeOf(const std::string &line) const;

    const ShardRing &ring() const { return ring_; }

  private:
    /** One connect-send-receive against a single node. */
    Result tryNode(const std::string &node, const std::string &line);

    ClusterConfig cluster_;
    ShardRing ring_;
    int io_timeout_ms_;
};

} // namespace mse

/**
 * @file
 * ClusterClient: client-side routing + failover over a daemon ring.
 *
 * The client derives the same ShardRing the daemons do from the node
 * list (`--cluster a,b,c`), computes the store key of a search request
 * locally (by parsing it with the server's own wire codec — one
 * parser, zero drift), and sends the request straight to the owning
 * shard. Two recovery paths:
 *
 *  - *wrong_shard redirect*: a daemon that does not serve the key
 *    rejects with the owner's address; the client retries there next.
 *    This self-heals a stale client-side node list in one extra hop.
 *  - *failover*: a dead/unreachable owner falls back to the next ring
 *    replica of the key, which holds a replicated copy of the store
 *    entry — a warm start survives the owner's death (the chaos
 *    harness Phase 5 certifies this under SIGKILL storms).
 *
 * One request() call makes a single sweep over the key's candidates
 * (replicas, then redirect targets); retry/backoff policy across
 * sweeps belongs to the caller (mse_client keeps its existing loop).
 *
 * Failure memory is a TTL cache, not a demotion: a node that failed a
 * transport attempt is *deferred* — moved to the back of the candidate
 * order so healthy replicas are tried first — for node_retry_ttl_ms,
 * then treated as healthy again. Deferred nodes are never skipped
 * (a fully deferred candidate set still gets a full sweep), and one
 * success clears the mark immediately, so a recovered daemon regains
 * its ring position after at most one TTL instead of being shunned
 * for the client's lifetime.
 */
#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/thread_annotations.hpp"

namespace mse {

/** Routing client over a cluster of mse_serve daemons. */
class ClusterClient
{
  public:
    /** io_timeout_ms bounds each connect-send-receive leg;
     *  node_retry_ttl_ms is how long a transport failure defers a
     *  node to the back of the candidate order (0 disables the
     *  failure cache entirely). */
    ClusterClient(ClusterConfig cluster, int io_timeout_ms = 120000,
                  int node_retry_ttl_ms = 5000);

    /** Outcome of one routed request (a single candidate sweep). */
    struct Result
    {
        /** A reply line was received (it may still carry ok:false —
         *  the caller inspects the payload). */
        bool ok = false;
        std::string reply;     ///< Raw reply line (when ok).
        std::string served_by; ///< Node that answered (when ok).
        std::string error;     ///< Transport failure detail (!ok).
        size_t nodes_tried = 0;
        bool redirected = false; ///< A wrong_shard redirect happened.
    };

    /**
     * Route one request line. Search requests go to the key's replica
     * set in ring order with failover; non-search requests (ping /
     * stats / raw lines the wire codec cannot place) go to every node
     * in order until one answers.
     */
    Result request(const std::string &line);

    /** Send `line` to every node; one (node, Result) per node. */
    std::vector<std::pair<std::string, Result>>
    broadcast(const std::string &line);

    /** Candidate nodes for `line`, in pure ring order (test hook):
     *  empty when the line is not a routable search. Failure-cache
     *  deferral is applied on top of this by request() — see
     *  orderCandidates(). */
    std::vector<std::string> routeOf(const std::string &line) const;

    /**
     * Apply the failure cache to a candidate list: nodes whose last
     * transport failure is within the TTL move to the back (original
     * order preserved within each group); nothing is ever dropped.
     */
    std::vector<std::string>
    orderCandidates(std::vector<std::string> nodes) const EXCLUDES(mu_);

    /** Record a transport failure against a node, deferring it for
     *  the TTL (request() does this automatically; test hook). */
    void markFailed(const std::string &node) EXCLUDES(mu_);

    /** True while `node` is deferred by the failure cache. */
    bool isDeferred(const std::string &node) const EXCLUDES(mu_);

    const ShardRing &ring() const { return ring_; }

  private:
    /** One connect-send-receive against a single node. Updates the
     *  failure cache: transport failure marks, success clears. */
    Result tryNode(const std::string &node, const std::string &line)
        EXCLUDES(mu_);

    ClusterConfig cluster_;
    ShardRing ring_;
    int io_timeout_ms_;
    int node_retry_ttl_ms_;

    mutable Mutex mu_;
    /** node -> steady-clock deadline (seconds) until which it is
     *  deferred. Entries are dropped on success or natural expiry. */
    std::unordered_map<std::string, double> failed_until_
        GUARDED_BY(mu_);
};

} // namespace mse

/**
 * @file
 * HealthMonitor: active failure detection for cluster peers.
 *
 * One probe thread walks the ring peers on a deterministic
 * steady-clock schedule (every probe_interval_ms per peer), sending
 * {"type":"probe"} over the normal wire protocol and applying a
 * three-state hysteresis machine to the outcomes:
 *
 *     Up ──(down_after consecutive failures)──▶ Down
 *     Down ──(one success)──▶ Suspect
 *     Suspect ──(one success)──▶ Up
 *     Suspect ──(one failure)──▶ Down
 *
 * The Suspect waypoint means a single lucky probe through a flapping
 * link cannot flip a peer straight back to Up — it takes two
 * consecutive successes, so hint drains and sync pulls don't thrash.
 *
 * Consumers poll healthOf() (ReplicationAgent gates shipping and
 * spills to hints on Down) or register an onTransition callback
 * (the daemon schedules an anti-entropy sync when a peer returns).
 * The callback fires on the probe thread with no monitor lock held.
 *
 * Probes go through the cluster.probe fault site (per-peer via
 * MSE_FAULT_PEERS), so the chaos harness can sever the probe path
 * without touching real sockets.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/json.hpp"
#include "common/thread_annotations.hpp"

namespace mse {

/** Observed availability of one peer. */
enum class PeerHealth
{
    Up,      ///< Answering probes.
    Suspect, ///< First success after Down; one more promotes to Up.
    Down,    ///< down_after consecutive probe failures.
};

/** Stable wire/stats name of a health state. */
const char *peerHealthName(PeerHealth h);

/** Tuning knobs of the health monitor. */
struct HealthConfig
{
    /** Per-peer probe period, ms. */
    int probe_interval_ms = 500;

    /** Per-probe reply timeout, ms. */
    int probe_timeout_ms = 1000;

    /** Consecutive failures before Up degrades to Down. */
    int down_after = 3;
};

/** Probes ring peers and tracks their availability. */
class HealthMonitor
{
  public:
    /** Transition callback: (peer, previous state, new state). */
    using TransitionFn = std::function<void(
        const std::string &peer, PeerHealth from, PeerHealth to)>;

    HealthMonitor(const ClusterConfig &cluster, HealthConfig cfg = {});
    ~HealthMonitor();

    HealthMonitor(const HealthMonitor &) = delete;
    HealthMonitor &operator=(const HealthMonitor &) = delete;

    /** Install the transition callback. Must be called before
     *  start(); the probe thread reads it unlocked. */
    void setOnTransition(TransitionFn fn);

    /** Start the probe thread (idempotent). */
    void start();

    /** Stop and join the probe thread (idempotent; destructor calls
     *  it). */
    void stop();

    /** Current state of one peer (Up for unknown addresses: absent
     *  peers must not look dead). */
    PeerHealth healthOf(const std::string &addr) const;

    /**
     * The pure hysteresis step, exposed so tests can replay exact
     * transition sequences without sockets or clocks.
     * `consecutive_failures` is the count *including* this probe when
     * probe_ok is false.
     */
    static PeerHealth nextState(PeerHealth cur, bool probe_ok,
                                int consecutive_failures,
                                int down_after);

    /** Stats block mounted at "health" in the daemon's statsJson. */
    JsonValue statsJson() const;

  private:
    struct PeerProbe
    {
        std::string addr;
        std::string host;
        uint16_t port = 0;
        PeerHealth state = PeerHealth::Up;
        int consecutive_failures = 0;
        uint64_t probes_sent = 0;
        uint64_t probes_failed = 0;
        uint64_t transitions = 0;
        double next_probe_at = 0.0; ///< steady-clock seconds.
    };

    void probeLoop();
    /** One probe round-trip (fault gate + connect + request). */
    bool probeOnce(const std::string &addr, const std::string &host,
                   uint16_t port);

    ClusterConfig cluster_;
    HealthConfig cfg_;
    TransitionFn on_transition_;

    mutable Mutex mu_;
    std::vector<PeerProbe> peers_ GUARDED_BY(mu_);
    bool running_ GUARDED_BY(mu_) = false;

    std::thread prober_;
    std::atomic<bool> stopping_{false};
};

} // namespace mse

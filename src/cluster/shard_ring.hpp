/**
 * @file
 * ShardRing: the consistent-hash ring that turns N independent
 * mse_serve daemons into one logical mapping-search service.
 *
 * The paper's warm-start result makes the MappingStore the asset that
 * must scale with users: every search that can see a previous search's
 * best mapping starts orders of magnitude closer to incumbent quality
 * (Sec. 5.1.3, reproduced at ~157x in the service bench). A single
 * daemon caps that sharing at one process. The cluster layer shards
 * the store key space across daemons; this ring is the shared routing
 * function every participant — client and server alike — evaluates
 * locally to agree on which daemon owns which key.
 *
 * Design:
 *  - Nodes are opaque address strings ("host:port"). Each node
 *    projects `vnodes` virtual points onto a 64-bit ring, hashed with
 *    FNV-1a over "node#i" — no RNG, no wall clock, so two processes
 *    given the same node set always build bit-identical rings
 *    regardless of the order the nodes were listed in.
 *  - A key (the MappingStore key, "wlsig|archsig|objective|density")
 *    is owned by the first virtual point clockwise of fnv1a64(key);
 *    its replica set is the owner plus the next R-1 *distinct* nodes
 *    clockwise.
 *  - Virtual points make node add/remove move only ~1/N of the key
 *    space (the classic consistent-hashing property; pinned by
 *    tests/test_shard_ring.cpp at <= ~2/N with slack).
 *
 * Ties: two virtual points may hash identically; order then falls
 * back to the node name, keeping the ring a pure function of the node
 * set. The ring is immutable-after-build in practice (topology changes
 * mean constructing a new ring); addNode/removeNode rebuild eagerly
 * and are not thread-safe against concurrent lookups.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mse {

/** Consistent-hash ring over daemon addresses. */
class ShardRing
{
  public:
    /** Default virtual points per node: enough to keep per-node load
     *  within a few percent of 1/N at single-digit N. */
    static constexpr size_t kDefaultVnodes = 64;

    ShardRing() = default;

    /** Build from a node set (duplicates ignored, order irrelevant). */
    explicit ShardRing(const std::vector<std::string> &nodes,
                       size_t vnodes = kDefaultVnodes);

    /** Add one node (no-op if present). */
    void addNode(const std::string &node);

    /** Remove one node; false if it was not in the ring. */
    bool removeNode(const std::string &node);

    bool empty() const { return nodes_.size() == 0; }
    size_t numNodes() const { return nodes_.size(); }
    size_t vnodesPerNode() const { return vnodes_; }

    /** Sorted node set (the ring is a pure function of this). */
    const std::vector<std::string> &nodes() const { return nodes_; }

    bool contains(const std::string &node) const;

    /**
     * The node owning `key`: first virtual point clockwise of
     * fnv1a64(key). Empty string on an empty ring.
     */
    const std::string &ownerOf(const std::string &key) const;

    /**
     * Replica set of `key`: the owner followed by the next n-1
     * distinct nodes clockwise. Fewer than n nodes => all of them.
     */
    std::vector<std::string> replicasOf(const std::string &key,
                                        size_t n) const;

    /** True if `node` is in replicasOf(key, n). */
    bool isReplica(const std::string &key, const std::string &node,
                   size_t n) const;

  private:
    void rebuild();

    /** One virtual point: position on the ring -> owning node index. */
    struct Point
    {
        uint64_t hash = 0;
        uint32_t node = 0; ///< Index into nodes_.
    };

    /** Index of the point owning `h` (points_ must be non-empty). */
    size_t pointFor(uint64_t h) const;

    std::vector<std::string> nodes_; ///< Sorted, unique.
    std::vector<Point> points_;      ///< Sorted by (hash, node name).
    size_t vnodes_ = kDefaultVnodes;
};

} // namespace mse

#include "cluster/health.hpp"

#include <algorithm>
#include <chrono>

#include "common/cluster_faults.hpp"
#include "common/fault_sites.hpp"
#include "service/net.hpp"

namespace mse {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

/** Stop-responsive sleep slice, ms. */
constexpr int kSliceMs = 10;

} // namespace

const char *
peerHealthName(PeerHealth h)
{
    switch (h) {
      case PeerHealth::Up:
        return "up";
      case PeerHealth::Suspect:
        return "suspect";
      case PeerHealth::Down:
        return "down";
    }
    return "up";
}

HealthMonitor::HealthMonitor(const ClusterConfig &cluster,
                             HealthConfig cfg)
    : cluster_(cluster), cfg_(cfg)
{
    const ShardRing ring = cluster_.ring();
    const double now = nowSeconds();
    MutexLock lk(mu_);
    for (const std::string &addr : ring.nodes()) {
        if (addr == cluster_.self)
            continue;
        PeerProbe ps;
        ps.addr = addr;
        if (!splitHostPort(addr, &ps.host, &ps.port))
            continue; // Unroutable peer address: skip it entirely.
        ps.next_probe_at = now; // First probe due immediately.
        peers_.push_back(std::move(ps));
    }
}

HealthMonitor::~HealthMonitor()
{
    stop();
}

void
HealthMonitor::setOnTransition(TransitionFn fn)
{
    on_transition_ = std::move(fn);
}

void
HealthMonitor::start()
{
    {
        MutexLock lk(mu_);
        if (running_ || peers_.empty())
            return;
        running_ = true;
    }
    stopping_.store(false);
    prober_ = std::thread([this] { probeLoop(); });
}

void
HealthMonitor::stop()
{
    stopping_.store(true);
    if (prober_.joinable())
        prober_.join();
    MutexLock lk(mu_);
    running_ = false;
}

PeerHealth
HealthMonitor::healthOf(const std::string &addr) const
{
    MutexLock lk(mu_);
    for (const PeerProbe &ps : peers_)
        if (ps.addr == addr)
            return ps.state;
    return PeerHealth::Up;
}

PeerHealth
HealthMonitor::nextState(PeerHealth cur, bool probe_ok,
                         int consecutive_failures, int down_after)
{
    if (probe_ok) {
        // Down climbs back through Suspect: one lucky probe through a
        // flapping link must not flip a peer straight to Up.
        if (cur == PeerHealth::Down)
            return PeerHealth::Suspect;
        return PeerHealth::Up;
    }
    if (cur == PeerHealth::Suspect)
        return PeerHealth::Down; // The recovery didn't hold.
    if (consecutive_failures >= down_after)
        return PeerHealth::Down;
    return cur;
}

bool
HealthMonitor::probeOnce(const std::string &addr,
                         const std::string &host, uint16_t port)
{
    if (clusterFaultCheck(fault_sites::kClusterProbe, addr) != 0)
        return false;
    std::string err;
    const int fd = connectTcp(host, port, &err);
    if (fd < 0)
        return false;
    JsonValue msg = JsonValue::object();
    msg["type"] = "probe";
    msg["from"] = cluster_.self;
    bool ok = sendLine(fd, msg.dump());
    if (ok) {
        LineReader reader(fd);
        std::string line;
        ok = reader.readLine(&line, cfg_.probe_timeout_ms) ==
            LineReader::Status::Line;
        if (ok) {
            const auto doc = parseJson(line);
            ok = doc && doc->getBool("ok", false);
        }
    }
    closeSocket(fd);
    return ok;
}

void
HealthMonitor::probeLoop()
{
    while (!stopping_.load()) {
        // Pick the next due peer (deterministic: ring order breaks
        // ties) without holding the lock across network I/O.
        std::string addr, host;
        uint16_t port = 0;
        double next_due = 0.0;
        {
            const double now = nowSeconds();
            MutexLock lk(mu_);
            next_due = now + cfg_.probe_interval_ms / 1e3;
            for (PeerProbe &ps : peers_) {
                if (ps.next_probe_at <= now && addr.empty()) {
                    addr = ps.addr;
                    host = ps.host;
                    port = ps.port;
                    ps.next_probe_at =
                        now + cfg_.probe_interval_ms / 1e3;
                } else {
                    next_due = std::min(next_due, ps.next_probe_at);
                }
            }
        }
        if (addr.empty()) {
            // Nothing due yet: sleep in slices so stop() stays
            // responsive.
            const double until = std::min(
                next_due, nowSeconds() + cfg_.probe_interval_ms / 1e3);
            while (!stopping_.load() && nowSeconds() < until)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(kSliceMs));
            continue;
        }
        const bool ok = probeOnce(addr, host, port);
        PeerHealth from = PeerHealth::Up, to = PeerHealth::Up;
        bool changed = false;
        {
            MutexLock lk(mu_);
            for (PeerProbe &ps : peers_) {
                if (ps.addr != addr)
                    continue;
                ++ps.probes_sent;
                if (ok)
                    ps.consecutive_failures = 0;
                else {
                    ++ps.probes_failed;
                    ++ps.consecutive_failures;
                }
                from = ps.state;
                to = nextState(ps.state, ok, ps.consecutive_failures,
                               cfg_.down_after);
                if (to != from) {
                    ps.state = to;
                    ++ps.transitions;
                    changed = true;
                }
                break;
            }
        }
        if (changed && on_transition_)
            on_transition_(addr, from, to);
    }
}

JsonValue
HealthMonitor::statsJson() const
{
    JsonValue j = JsonValue::object();
    j["probe_interval_ms"] = cfg_.probe_interval_ms;
    j["down_after"] = cfg_.down_after;
    uint64_t up = 0, suspect = 0, down = 0;
    uint64_t sent = 0, failed = 0;
    JsonValue &peers = j["peers"];
    peers = JsonValue::object();
    MutexLock lk(mu_);
    for (const PeerProbe &ps : peers_) {
        JsonValue &pp = peers[ps.addr];
        pp["state"] = peerHealthName(ps.state);
        pp["consecutive_failures"] = ps.consecutive_failures;
        pp["probes_sent"] = ps.probes_sent;
        pp["probes_failed"] = ps.probes_failed;
        pp["transitions"] = ps.transitions;
        sent += ps.probes_sent;
        failed += ps.probes_failed;
        if (ps.state == PeerHealth::Up)
            ++up;
        else if (ps.state == PeerHealth::Suspect)
            ++suspect;
        else
            ++down;
    }
    j["peers_up"] = up;
    j["peers_suspect"] = suspect;
    j["peers_down"] = down;
    j["probes_sent"] = sent;
    j["probes_failed"] = failed;
    return j;
}

} // namespace mse

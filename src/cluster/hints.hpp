/**
 * @file
 * HintLog: the bounded hinted-handoff buffer for one Down peer.
 *
 * When a ring successor is Down, ReplicationAgent redirects its
 * replication batches here instead of burning backoff retries against
 * a dead socket. The log is a bounded in-memory deque mirrored to an
 * append-only JSONL file (one MappingStore record line per hint)
 * through the sys_io seam — cluster.hint.append / cluster.hint.read
 * fault sites — so hints survive a daemon restart. On recovery the
 * agent drains oldest-first and truncates the file once every hint is
 * acked.
 *
 * Overflow drops the *oldest* hints (counted): hints are monotone
 * best-score records like everything else in replication, so the
 * freshest ones carry the most information, and anti-entropy sync
 * backstops anything dropped.
 *
 * Loading follows the MappingStore tail conventions: a final line
 * without a newline (crash mid-append) is still parsed if it decodes,
 * and malformed lines are skipped and counted, never fatal.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "service/mapping_store.hpp"

namespace mse {

/** Bounded, file-backed hint queue for one peer. */
class HintLog
{
  public:
    /**
     * path empty = memory-only (tests, in-memory daemons). A
     * non-empty path is loaded immediately; entries beyond capacity
     * are trimmed oldest-first (counted as dropped).
     */
    HintLog(std::string path, size_t capacity);

    HintLog(const HintLog &) = delete;
    HintLog &operator=(const HintLog &) = delete;

    /** Append one hint (drop-oldest on overflow). */
    void push(const StoreEntry &e) EXCLUDES(mu_);

    /** Oldest max_n hints, in order, without removing them. */
    std::vector<StoreEntry> peek(size_t max_n) const EXCLUDES(mu_);

    /**
     * Drop the oldest n hints after a successful ship. When the queue
     * empties, the backing file is truncated — until then it may hold
     * already-shipped lines, which is safe: a crash mid-drain re-ships
     * them and best-score-wins merge makes that a no-op.
     */
    void popFront(size_t n) EXCLUDES(mu_);

    size_t size() const EXCLUDES(mu_);

    /** Hints dropped by overflow (including load-time trimming). */
    uint64_t dropped() const EXCLUDES(mu_);

    /** Malformed lines skipped while loading the hint file. */
    uint64_t malformedLines() const EXCLUDES(mu_);

    /** True when the loaded file ended in an unterminated line. */
    bool tailUnterminated() const EXCLUDES(mu_);

    const std::string &path() const { return path_; }

  private:
    void loadLocked() REQUIRES(mu_);
    bool appendLineLocked(const std::string &line) REQUIRES(mu_);
    void truncateFileLocked() REQUIRES(mu_);

    std::string path_;
    size_t capacity_;

    mutable Mutex mu_;
    std::deque<StoreEntry> q_ GUARDED_BY(mu_);
    uint64_t dropped_ GUARDED_BY(mu_) = 0;
    uint64_t malformed_ GUARDED_BY(mu_) = 0;
    bool tail_unterminated_ GUARDED_BY(mu_) = false;
};

/** Hint-file path for one peer: prefix + sanitized peer address
 *  (':' and '/' become '_'). Empty prefix = memory-only logs. */
std::string hintFilePath(const std::string &prefix,
                         const std::string &peer_addr);

} // namespace mse

/**
 * @file
 * Shared cluster topology configuration.
 *
 * One ClusterConfig describes a daemon's view of the cluster: its own
 * advertised address, the full node set (self + peers), and the
 * replication factor (total copies of each key, owner included). The
 * client builds the identical structure from `--cluster a,b,c`; both
 * sides derive the same ShardRing from it, which is what makes
 * client-side routing and server-side ownership checks agree without
 * any coordination service.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/shard_ring.hpp"

namespace mse {

/** Topology shared by daemons and routing clients. */
struct ClusterConfig
{
    /** This daemon's advertised "host:port" (empty on pure clients). */
    std::string self;

    /** All cluster nodes, self included. Order irrelevant. */
    std::vector<std::string> nodes;

    /** Copies of each key (owner + successors), clamped to [1, nodes]. */
    size_t replication = 2;

    /** Virtual points per node on the ring. */
    size_t vnodes = ShardRing::kDefaultVnodes;

    /** The ring every participant derives from this topology. */
    ShardRing ring() const { return ShardRing(nodes, vnodes); }

    size_t replicationClamped() const
    {
        const size_t n = nodes.size();
        if (replication < 1)
            return n > 0 ? 1 : 0;
        return replication > n ? n : replication;
    }
};

/** Split "a,b,c" into trimmed non-empty address tokens. */
inline std::vector<std::string>
splitNodeList(const std::string &csv)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= csv.size()) {
        const size_t comma = csv.find(',', pos);
        const size_t end =
            comma == std::string::npos ? csv.size() : comma;
        std::string tok = csv.substr(pos, end - pos);
        while (!tok.empty() && (tok.front() == ' ' || tok.front() == '\t'))
            tok.erase(tok.begin());
        while (!tok.empty() && (tok.back() == ' ' || tok.back() == '\t'))
            tok.pop_back();
        if (!tok.empty())
            out.push_back(tok);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

/** Parse "host:port"; false on a missing/invalid port. */
inline bool
splitHostPort(const std::string &addr, std::string *host,
              uint16_t *port)
{
    const size_t colon = addr.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= addr.size())
        return false;
    long p = 0;
    for (size_t i = colon + 1; i < addr.size(); ++i) {
        if (addr[i] < '0' || addr[i] > '9')
            return false;
        p = p * 10 + (addr[i] - '0');
        if (p > 65535)
            return false;
    }
    if (p <= 0)
        return false;
    if (host)
        *host = addr.substr(0, colon);
    if (port)
        *port = static_cast<uint16_t>(p);
    return true;
}

} // namespace mse

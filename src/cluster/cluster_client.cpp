#include "cluster/cluster_client.hpp"

#include <algorithm>

#include "common/json.hpp"
#include "service/net.hpp"
#include "service/wire.hpp"
#include "service/error_codes.hpp"

namespace mse {

ClusterClient::ClusterClient(ClusterConfig cluster, int io_timeout_ms)
    : cluster_(std::move(cluster)), ring_(cluster_.ring()),
      io_timeout_ms_(io_timeout_ms)
{
}

std::vector<std::string>
ClusterClient::routeOf(const std::string &line) const
{
    std::string code, msg;
    const auto req = parseWireRequest(line, &code, &msg);
    if (!req || req->kind != WireRequest::Kind::Search)
        return {};
    const std::string key = MappingStore::keyOf(
        req->search.workload, req->search.arch, req->search.objective,
        req->search.sparse);
    return ring_.replicasOf(key, cluster_.replicationClamped());
}

ClusterClient::Result
ClusterClient::tryNode(const std::string &node, const std::string &line)
{
    Result r;
    std::string host;
    uint16_t port = 0;
    if (!splitHostPort(node, &host, &port)) {
        r.error = "bad node address '" + node + "'";
        return r;
    }
    std::string err;
    const int fd = connectTcp(host, port, &err);
    if (fd < 0) {
        r.error = node + ": " + err;
        return r;
    }
    if (!sendLine(fd, line)) {
        closeSocket(fd);
        r.error = node + ": send failed";
        return r;
    }
    LineReader reader(fd);
    const auto status = reader.readLine(&r.reply, io_timeout_ms_);
    closeSocket(fd);
    if (status != LineReader::Status::Line) {
        r.reply.clear();
        r.error = node +
            (status == LineReader::Status::Timeout
                 ? ": reply timeout"
                 : ": connection lost before reply");
        return r;
    }
    r.ok = true;
    r.served_by = node;
    return r;
}

ClusterClient::Result
ClusterClient::request(const std::string &line)
{
    // Candidate order: the key's replica set for searches (owner
    // first — that's where the freshest best lives), every node for
    // anything else.
    std::vector<std::string> candidates = routeOf(line);
    if (candidates.empty())
        candidates = ring_.nodes();

    Result last;
    std::vector<std::string> tried;
    for (size_t i = 0; i < candidates.size(); ++i) {
        const std::string node = candidates[i];
        if (std::find(tried.begin(), tried.end(), node) != tried.end())
            continue;
        tried.push_back(node);
        Result r = tryNode(node, line);
        r.nodes_tried = tried.size();
        r.redirected = last.redirected;
        if (!r.ok) {
            // Dead/unreachable node: fail over to the next replica.
            last = std::move(r);
            continue;
        }
        // wrong_shard => our node list is stale relative to the
        // daemons'. Follow the owner the daemon names (one redirect
        // per fresh target; `tried` bounds the walk).
        const auto doc = parseJson(r.reply);
        if (doc && !doc->getBool("ok", false)) {
            if (const JsonValue *e = doc->find("error")) {
                if (e->getString("code", "") == wire_errors::kWrongShard) {
                    const std::string owner = e->getString("owner", "");
                    r.redirected = true;
                    if (!owner.empty() &&
                        std::find(tried.begin(), tried.end(), owner) ==
                            tried.end()) {
                        candidates.push_back(owner);
                        last = std::move(r);
                        continue;
                    }
                }
            }
        }
        return r;
    }
    if (last.error.empty())
        last.error = "no cluster nodes configured";
    last.nodes_tried = tried.size();
    return last;
}

std::vector<std::pair<std::string, ClusterClient::Result>>
ClusterClient::broadcast(const std::string &line)
{
    std::vector<std::pair<std::string, Result>> out;
    for (const std::string &node : ring_.nodes()) {
        Result r = tryNode(node, line);
        r.nodes_tried = 1;
        out.emplace_back(node, std::move(r));
    }
    return out;
}

} // namespace mse

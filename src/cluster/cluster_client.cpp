#include "cluster/cluster_client.hpp"

#include <algorithm>
#include <chrono>

#include "common/json.hpp"
#include "service/net.hpp"
#include "service/wire.hpp"
#include "service/error_codes.hpp"

namespace mse {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace

ClusterClient::ClusterClient(ClusterConfig cluster, int io_timeout_ms,
                             int node_retry_ttl_ms)
    : cluster_(std::move(cluster)), ring_(cluster_.ring()),
      io_timeout_ms_(io_timeout_ms),
      node_retry_ttl_ms_(node_retry_ttl_ms)
{
}

void
ClusterClient::markFailed(const std::string &node)
{
    if (node_retry_ttl_ms_ <= 0)
        return;
    MutexLock lk(mu_);
    failed_until_[node] = nowSeconds() + node_retry_ttl_ms_ / 1e3;
}

bool
ClusterClient::isDeferred(const std::string &node) const
{
    MutexLock lk(mu_);
    const auto it = failed_until_.find(node);
    return it != failed_until_.end() && it->second > nowSeconds();
}

std::vector<std::string>
ClusterClient::orderCandidates(std::vector<std::string> nodes) const
{
    const double now = nowSeconds();
    std::vector<std::string> healthy, deferred;
    MutexLock lk(mu_);
    for (std::string &node : nodes) {
        const auto it = failed_until_.find(node);
        if (it != failed_until_.end() && it->second > now)
            deferred.push_back(std::move(node));
        else
            healthy.push_back(std::move(node));
    }
    healthy.insert(healthy.end(),
                   std::make_move_iterator(deferred.begin()),
                   std::make_move_iterator(deferred.end()));
    return healthy;
}

std::vector<std::string>
ClusterClient::routeOf(const std::string &line) const
{
    std::string code, msg;
    const auto req = parseWireRequest(line, &code, &msg);
    if (!req || req->kind != WireRequest::Kind::Search)
        return {};
    const std::string key = MappingStore::keyOf(
        req->search.workload, req->search.arch, req->search.objective,
        req->search.sparse);
    return ring_.replicasOf(key, cluster_.replicationClamped());
}

ClusterClient::Result
ClusterClient::tryNode(const std::string &node, const std::string &line)
{
    Result r;
    std::string host;
    uint16_t port = 0;
    if (!splitHostPort(node, &host, &port)) {
        r.error = "bad node address '" + node + "'";
        markFailed(node);
        return r;
    }
    std::string err;
    const int fd = connectTcp(host, port, &err);
    if (fd < 0) {
        r.error = node + ": " + err;
        markFailed(node);
        return r;
    }
    if (!sendLine(fd, line)) {
        closeSocket(fd);
        r.error = node + ": send failed";
        markFailed(node);
        return r;
    }
    LineReader reader(fd);
    const auto status = reader.readLine(&r.reply, io_timeout_ms_);
    closeSocket(fd);
    if (status != LineReader::Status::Line) {
        r.reply.clear();
        r.error = node +
            (status == LineReader::Status::Timeout
                 ? ": reply timeout"
                 : ": connection lost before reply");
        markFailed(node);
        return r;
    }
    r.ok = true;
    r.served_by = node;
    // One success clears the deferral immediately: a recovered daemon
    // regains its ring position without waiting out the TTL.
    {
        MutexLock lk(mu_);
        failed_until_.erase(node);
    }
    return r;
}

ClusterClient::Result
ClusterClient::request(const std::string &line)
{
    // Candidate order: the key's replica set for searches (owner
    // first — that's where the freshest best lives), every node for
    // anything else. Recently failed nodes sort to the back but stay
    // in the sweep — a deferral, never a demotion.
    std::vector<std::string> candidates = routeOf(line);
    if (candidates.empty())
        candidates = ring_.nodes();
    candidates = orderCandidates(std::move(candidates));

    Result last;
    std::vector<std::string> tried;
    for (size_t i = 0; i < candidates.size(); ++i) {
        const std::string node = candidates[i];
        if (std::find(tried.begin(), tried.end(), node) != tried.end())
            continue;
        tried.push_back(node);
        Result r = tryNode(node, line);
        r.nodes_tried = tried.size();
        r.redirected = last.redirected;
        if (!r.ok) {
            // Dead/unreachable node: fail over to the next replica.
            last = std::move(r);
            continue;
        }
        // wrong_shard => our node list is stale relative to the
        // daemons'. Follow the owner the daemon names (one redirect
        // per fresh target; `tried` bounds the walk).
        const auto doc = parseJson(r.reply);
        if (doc && !doc->getBool("ok", false)) {
            if (const JsonValue *e = doc->find("error")) {
                if (e->getString("code", "") == wire_errors::kWrongShard) {
                    const std::string owner = e->getString("owner", "");
                    r.redirected = true;
                    if (!owner.empty() &&
                        std::find(tried.begin(), tried.end(), owner) ==
                            tried.end()) {
                        candidates.push_back(owner);
                        last = std::move(r);
                        continue;
                    }
                }
            }
        }
        return r;
    }
    if (last.error.empty())
        last.error = "no cluster nodes configured";
    last.nodes_tried = tried.size();
    return last;
}

std::vector<std::pair<std::string, ClusterClient::Result>>
ClusterClient::broadcast(const std::string &line)
{
    std::vector<std::pair<std::string, Result>> out;
    for (const std::string &node : ring_.nodes()) {
        Result r = tryNode(node, line);
        r.nodes_tried = 1;
        out.emplace_back(node, std::move(r));
    }
    return out;
}

} // namespace mse

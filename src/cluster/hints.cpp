#include "cluster/hints.hpp"

#include <algorithm>
#include <cerrno>
#include <fcntl.h>

#include "common/fault_sites.hpp"
#include "common/sys_io.hpp"

namespace mse {

std::string
hintFilePath(const std::string &prefix, const std::string &peer_addr)
{
    if (prefix.empty())
        return "";
    std::string sanitized = peer_addr;
    for (char &c : sanitized)
        if (c == ':' || c == '/')
            c = '_';
    return prefix + "hints_" + sanitized + ".jsonl";
}

HintLog::HintLog(std::string path, size_t capacity)
    : path_(std::move(path)), capacity_(capacity == 0 ? 1 : capacity)
{
    MutexLock lk(mu_);
    loadLocked();
}

void
HintLog::loadLocked()
{
    if (path_.empty())
        return;
    const int fd = sysOpen(path_.c_str(), O_RDONLY, 0,
                           fault_sites::kClusterHintRead);
    if (fd < 0)
        return; // Missing file = no pending hints; read errors too —
                // hints are redundancy, sync backstops them.
    std::string pending;
    char chunk[1 << 16];
    auto ingest = [this](const std::string &line) {
        if (line.empty())
            return;
        auto e = MappingStore::decodeEntry(line);
        if (!e) {
            ++malformed_;
            return;
        }
        if (q_.size() >= capacity_) {
            q_.pop_front();
            ++dropped_; // Trim oldest: freshest hints win.
        }
        q_.push_back(std::move(*e));
    };
    while (true) {
        const ssize_t r = sysRead(fd, chunk, sizeof(chunk),
                                  fault_sites::kClusterHintRead);
        if (r < 0) {
            pending.clear();
            break; // Keep the parsed prefix.
        }
        if (r == 0)
            break;
        pending.append(chunk, static_cast<size_t>(r));
        size_t start = 0;
        while (true) {
            const size_t nl = pending.find('\n', start);
            if (nl == std::string::npos)
                break;
            ingest(pending.substr(start, nl - start));
            start = nl + 1;
        }
        pending.erase(0, start);
    }
    if (!pending.empty()) {
        // Crash mid-append (MappingStore tail convention): parse the
        // unterminated line if it decodes, count it otherwise.
        tail_unterminated_ = true;
        ingest(pending);
    }
    sysClose(fd);
}

bool
HintLog::appendLineLocked(const std::string &line)
{
    const int fd = sysOpen(path_.c_str(),
                           O_WRONLY | O_APPEND | O_CREAT, 0644,
                           fault_sites::kClusterHintAppend);
    if (fd < 0)
        return false;
    const std::string data = line + "\n";
    const bool ok = sysWriteAll(fd, data.data(), data.size(),
                                fault_sites::kClusterHintAppend);
    sysClose(fd);
    return ok;
}

void
HintLog::truncateFileLocked()
{
    const int fd = sysOpen(path_.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC, 0644,
                           fault_sites::kClusterHintAppend);
    if (fd >= 0)
        sysClose(fd);
}

void
HintLog::push(const StoreEntry &e)
{
    MutexLock lk(mu_);
    if (q_.size() >= capacity_) {
        q_.pop_front();
        ++dropped_;
    }
    q_.push_back(e);
    if (!path_.empty()) {
        // Append failures lose only redundancy (the hint stays in
        // memory; anti-entropy sync backstops a crash), so they are
        // not fatal and not sticky.
        (void)appendLineLocked(MappingStore::encodeEntry(e));
    }
}

std::vector<StoreEntry>
HintLog::peek(size_t max_n) const
{
    MutexLock lk(mu_);
    std::vector<StoreEntry> out;
    const size_t n = std::min(max_n, q_.size());
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(q_[i]);
    return out;
}

void
HintLog::popFront(size_t n)
{
    MutexLock lk(mu_);
    for (size_t i = 0; i < n && !q_.empty(); ++i)
        q_.pop_front();
    // Every hint acked: start the file clean. Until then shipped
    // lines linger on disk — harmless, a crash re-ships idempotently.
    if (!path_.empty() && q_.empty())
        truncateFileLocked();
}

size_t
HintLog::size() const
{
    MutexLock lk(mu_);
    return q_.size();
}

uint64_t
HintLog::dropped() const
{
    MutexLock lk(mu_);
    return dropped_;
}

uint64_t
HintLog::malformedLines() const
{
    MutexLock lk(mu_);
    return malformed_;
}

bool
HintLog::tailUnterminated() const
{
    MutexLock lk(mu_);
    return tail_unterminated_;
}

} // namespace mse

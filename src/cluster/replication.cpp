#include "cluster/replication.hpp"

#include <algorithm>
#include <chrono>

#include "service/net.hpp"

namespace mse {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace

ReplicationAgent::ReplicationAgent(const ClusterConfig &cluster,
                                   ReplicationConfig cfg)
    : cluster_(cluster), ring_(cluster.ring()), cfg_(cfg)
{
    for (const std::string &addr : ring_.nodes()) {
        if (addr == cluster_.self)
            continue;
        auto p = std::make_unique<Peer>();
        p->addr = addr;
        if (!splitHostPort(addr, &p->host, &p->port))
            continue; // Unroutable peer address: skip it entirely.
        peers_.push_back(std::move(p));
    }
    for (auto &p : peers_) {
        Peer &peer = *p;
        peer.worker = std::thread([this, &peer] { workerLoop(peer); });
    }
}

ReplicationAgent::~ReplicationAgent()
{
    stop();
}

void
ReplicationAgent::enqueue(const StoreEntry &e)
{
    if (stopping_.load() || peers_.empty())
        return;
    const std::string key = MappingStore::keyOfEntry(e);
    const auto replicas =
        ring_.replicasOf(key, cluster_.replicationClamped());
    const double now = nowSeconds();
    for (auto &p : peers_) {
        if (std::find(replicas.begin(), replicas.end(), p->addr) ==
            replicas.end())
            continue;
        {
            MutexLock lk(p->mu);
            if (p->q.size() >= cfg_.queue_capacity) {
                // Drop-oldest: under overload the freshest bests win,
                // and a dropped record reappears the next time its
                // key improves anywhere.
                p->q.pop_front();
                ++p->dropped;
            }
            Item it;
            it.seq = p->next_seq++;
            it.enqueued_at = now;
            it.entry = e;
            p->q.push_back(std::move(it));
        }
        p->cv.notify_one();
    }
}

bool
ReplicationAgent::shipBatch(Peer &p, const std::vector<Item> &batch)
{
    if (p.fd < 0) {
        std::string err;
        p.fd = connectTcp(p.host, p.port, &err);
        if (p.fd < 0)
            return false;
    }
    JsonValue msg = JsonValue::object();
    msg["type"] = "replicate";
    msg["from"] = cluster_.self;
    JsonValue &entries = msg["entries"];
    entries = JsonValue::array();
    for (const Item &it : batch)
        entries.push(MappingStore::encodeEntryJson(it.entry));
    if (!sendLine(p.fd, msg.dump())) {
        closeSocket(p.fd);
        p.fd = -1;
        return false;
    }
    LineReader reader(p.fd);
    std::string line;
    if (reader.readLine(&line, cfg_.io_timeout_ms) !=
        LineReader::Status::Line) {
        closeSocket(p.fd);
        p.fd = -1;
        return false;
    }
    const auto doc = parseJson(line);
    if (!doc || !doc->getBool("ok", false)) {
        // A daemon that answers but rejects (e.g. an older build) is
        // not coming around on retry; drop the batch rather than spin.
        // The connection itself is still fine.
        return true;
    }
    MutexLock lk(p.mu);
    p.merged += static_cast<uint64_t>(doc->getInt("merged", 0));
    p.acked += batch.size();
    return true;
}

void
ReplicationAgent::workerLoop(Peer &p)
{
    int backoff_ms = 0; // 0 = healthy, ship as soon as work arrives.
    while (true) {
        std::vector<Item> batch;
        {
            MutexUniqueLock lk(p.mu);
            while (!stopping_.load() && p.q.empty())
                p.cv.wait_for(
                    lk.native(),
                    std::chrono::milliseconds(cfg_.flush_interval_ms));
            if (p.q.empty()) {
                if (stopping_.load())
                    break;
                continue;
            }
            const size_t n = std::min(cfg_.max_batch, p.q.size());
            batch.assign(p.q.begin(),
                         p.q.begin() + static_cast<long>(n));
        }
        // Network I/O with the queue unlocked: enqueue() never blocks
        // behind a slow peer.
        if (shipBatch(p, batch)) {
            backoff_ms = 0;
            const uint64_t last_seq = batch.back().seq;
            MutexLock lk(p.mu);
            p.shipped += batch.size();
            // Pop exactly what was shipped: drop-oldest may have
            // advanced the front past (never into) this batch.
            while (!p.q.empty() && p.q.front().seq <= last_seq)
                p.q.pop_front();
        } else {
            {
                MutexLock lk(p.mu);
                ++p.ship_failures;
            }
            if (stopping_.load())
                break; // One best-effort attempt per batch at stop.
            backoff_ms = backoff_ms == 0
                ? cfg_.backoff_base_ms
                : std::min(backoff_ms * 2, cfg_.backoff_cap_ms);
            // Sleep in small slices so stop() stays responsive.
            const double until = nowSeconds() + backoff_ms / 1e3;
            while (!stopping_.load() && nowSeconds() < until)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
        }
        if (stopping_.load()) {
            MutexLock lk(p.mu);
            if (p.q.empty())
                break;
        }
    }
    if (p.fd >= 0) {
        closeSocket(p.fd);
        p.fd = -1;
    }
}

void
ReplicationAgent::stop()
{
    if (stopping_.exchange(true))
        return;
    for (auto &p : peers_)
        p->cv.notify_all();
    for (auto &p : peers_)
        if (p->worker.joinable())
            p->worker.join();
}

size_t
ReplicationAgent::queueDepth() const
{
    size_t total = 0;
    for (const auto &p : peers_) {
        MutexLock lk(p->mu);
        total += p->q.size();
    }
    return total;
}

JsonValue
ReplicationAgent::statsJson() const
{
    JsonValue j = JsonValue::object();
    j["replication_factor"] = cluster_.replicationClamped();
    j["peers"] = peers_.size();
    uint64_t depth = 0, shipped = 0, acked = 0, merged = 0;
    uint64_t dropped = 0, failures = 0;
    double oldest = 0.0;
    const double now = nowSeconds();
    JsonValue &per_peer = j["per_peer"];
    per_peer = JsonValue::object();
    for (const auto &p : peers_) {
        MutexLock lk(p->mu);
        JsonValue &pp = per_peer[p->addr];
        pp["queue_depth"] = p->q.size();
        pp["shipped"] = p->shipped;
        pp["acked"] = p->acked;
        pp["merged_by_peer"] = p->merged;
        pp["dropped"] = p->dropped;
        pp["ship_failures"] = p->ship_failures;
        const double lag =
            p->q.empty() ? 0.0 : now - p->q.front().enqueued_at;
        pp["lag_s"] = lag;
        oldest = std::max(oldest, lag);
        depth += p->q.size();
        shipped += p->shipped;
        acked += p->acked;
        merged += p->merged;
        dropped += p->dropped;
        failures += p->ship_failures;
    }
    j["queue_depth"] = depth;
    j["shipped"] = shipped;
    j["acked"] = acked;
    j["merged_by_peers"] = merged;
    j["dropped"] = dropped;
    j["ship_failures"] = failures;
    j["lag_s"] = oldest;
    return j;
}

} // namespace mse

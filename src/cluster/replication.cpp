#include "cluster/replication.hpp"

#include <algorithm>
#include <chrono>

#include "common/cluster_faults.hpp"
#include "common/fault_sites.hpp"
#include "service/error_codes.hpp"
#include "service/net.hpp"

namespace mse {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

} // namespace

ReplicationAgent::ReplicationAgent(const ClusterConfig &cluster,
                                   ReplicationConfig cfg,
                                   ReplicationHooks hooks)
    : cluster_(cluster), ring_(cluster.ring()), cfg_(std::move(cfg)),
      hooks_(std::move(hooks))
{
    for (const std::string &addr : ring_.nodes()) {
        if (addr == cluster_.self)
            continue;
        auto p = std::make_unique<Peer>();
        p->addr = addr;
        if (!splitHostPort(addr, &p->host, &p->port))
            continue; // Unroutable peer address: skip it entirely.
        p->hints = std::make_unique<HintLog>(
            hintFilePath(cfg_.hint_path_prefix, addr),
            cfg_.hint_capacity);
        peers_.push_back(std::move(p));
    }
    for (auto &p : peers_) {
        Peer &peer = *p;
        peer.worker = std::thread([this, &peer] { workerLoop(peer); });
    }
}

ReplicationAgent::~ReplicationAgent()
{
    stop();
}

void
ReplicationAgent::enqueue(const StoreEntry &e)
{
    if (stopping_.load() || peers_.empty())
        return;
    const std::string key = MappingStore::keyOfEntry(e);
    const auto replicas =
        ring_.replicasOf(key, cluster_.replicationClamped());
    const double now = nowSeconds();
    for (auto &p : peers_) {
        if (std::find(replicas.begin(), replicas.end(), p->addr) ==
            replicas.end())
            continue;
        {
            MutexLock lk(p->mu);
            if (p->q.size() >= cfg_.queue_capacity) {
                // Drop-oldest: under overload the freshest bests win,
                // and a dropped record reappears the next time its
                // key improves anywhere.
                p->q.pop_front();
                ++p->dropped;
            }
            Item it;
            it.seq = p->next_seq++;
            it.enqueued_at = now;
            it.entry = e;
            p->q.push_back(std::move(it));
        }
        p->cv.notify_one();
    }
}

void
ReplicationAgent::requestSync(const std::string &addr)
{
    for (auto &p : peers_) {
        if (p->addr != addr)
            continue;
        {
            MutexLock lk(p->mu);
            p->sync_pending = true;
        }
        p->cv.notify_one();
    }
}

void
ReplicationAgent::requestSyncAll()
{
    for (auto &p : peers_)
        requestSync(p->addr);
}

PeerHealth
ReplicationAgent::peerHealth(const Peer &p) const
{
    return hooks_.health_of ? hooks_.health_of(p.addr) : PeerHealth::Up;
}

bool
ReplicationAgent::shipEntries(Peer &p,
                              const std::vector<StoreEntry> &entries,
                              uint64_t *merged_out, bool *acked_out)
{
    if (clusterFaultCheck(fault_sites::kClusterShip, p.addr) != 0) {
        // Injected outbound failure: behave like a real send error
        // (connection is gone, caller backs off).
        if (p.fd >= 0) {
            closeSocket(p.fd);
            p.fd = -1;
        }
        return false;
    }
    if (p.fd < 0) {
        std::string err;
        p.fd = connectTcp(p.host, p.port, &err);
        if (p.fd < 0)
            return false;
    }
    JsonValue msg = JsonValue::object();
    msg["type"] = "replicate";
    msg["from"] = cluster_.self;
    JsonValue &arr = msg["entries"];
    arr = JsonValue::array();
    for (const StoreEntry &e : entries)
        arr.push(MappingStore::encodeEntryJson(e));
    if (!sendLine(p.fd, msg.dump())) {
        closeSocket(p.fd);
        p.fd = -1;
        return false;
    }
    LineReader reader(p.fd);
    std::string line;
    if (reader.readLine(&line, cfg_.io_timeout_ms) !=
        LineReader::Status::Line) {
        closeSocket(p.fd);
        p.fd = -1;
        return false;
    }
    const auto doc = parseJson(line);
    if (!doc)
        return true; // Unparseable ack: not coming around on retry.
    if (!doc->getBool("ok", false)) {
        // A structured refusal: retryable codes (unavailable — the
        // peer is alive but gating cluster ops) keep the batch queued
        // for the backoff path; anything else (e.g. an older build
        // rejecting the op) drops it rather than spin. The connection
        // itself is still fine either way.
        const JsonValue *err = doc->find("error");
        const std::string code =
            err ? err->getString("code", "") : std::string();
        return !wire_errors::isRetryable(code.c_str());
    }
    if (acked_out)
        *acked_out = true;
    if (merged_out)
        *merged_out += static_cast<uint64_t>(doc->getInt("merged", 0));
    return true;
}

bool
ReplicationAgent::syncRound(Peer &p, size_t *pulled_out, bool *more_out)
{
    *pulled_out = 0;
    *more_out = false;
    if (!hooks_.local_digest || !hooks_.apply_entries)
        return true; // Anti-entropy disabled: nothing to do.
    if (clusterFaultCheck(fault_sites::kClusterSync, p.addr) != 0) {
        if (p.fd >= 0) {
            closeSocket(p.fd);
            p.fd = -1;
        }
        return false;
    }
    if (p.fd < 0) {
        std::string err;
        p.fd = connectTcp(p.host, p.port, &err);
        if (p.fd < 0)
            return false;
    }
    JsonValue msg = JsonValue::object();
    msg["type"] = "sync";
    msg["from"] = cluster_.self;
    JsonValue &digest = msg["digest"];
    digest = JsonValue::object();
    for (const auto &kv : hooks_.local_digest())
        digest[kv.first] = kv.second;
    if (!sendLine(p.fd, msg.dump())) {
        closeSocket(p.fd);
        p.fd = -1;
        return false;
    }
    LineReader reader(p.fd);
    std::string line;
    if (reader.readLine(&line, cfg_.io_timeout_ms) !=
        LineReader::Status::Line) {
        closeSocket(p.fd);
        p.fd = -1;
        return false;
    }
    const auto doc = parseJson(line);
    if (!doc)
        return true;
    if (!doc->getBool("ok", false)) {
        const JsonValue *err = doc->find("error");
        const std::string code =
            err ? err->getString("code", "") : std::string();
        return !wire_errors::isRetryable(code.c_str());
    }
    std::vector<StoreEntry> pulled;
    if (const JsonValue *arr = doc->find("entries")) {
        if (arr->isArray()) {
            for (const JsonValue &item : arr->items()) {
                auto e = MappingStore::decodeEntryJson(item);
                if (e)
                    pulled.push_back(std::move(*e));
            }
        }
    }
    if (!pulled.empty())
        *pulled_out = hooks_.apply_entries(pulled);
    // A non-empty reply may have been capped by the responder: run
    // another round (the refreshed digest shrinks the diff each time,
    // so this terminates).
    *more_out = !pulled.empty();
    return true;
}

void
ReplicationAgent::spillToHints(Peer &p)
{
    std::deque<Item> moved;
    {
        MutexLock lk(p.mu);
        moved.swap(p.q);
    }
    // Hint pushes (and their file appends) run with the queue
    // unlocked, so enqueue() never blocks behind hint-file I/O.
    for (const Item &it : moved)
        p.hints->push(it.entry);
}

void
ReplicationAgent::workerLoop(Peer &p)
{
    while (true) {
        {
            MutexUniqueLock lk(p.mu);
            if (!stopping_.load() && p.q.empty() && !p.sync_pending)
                p.cv.wait_for(
                    lk.native(),
                    std::chrono::milliseconds(cfg_.flush_interval_ms));
        }
        const bool stopping = stopping_.load();

        if (peerHealth(p) == PeerHealth::Down) {
            // Hinted handoff: park the pending records instead of
            // burning backoff retries against a dead socket. The
            // flush-interval wait above paces re-checking.
            spillToHints(p);
            {
                MutexLock lk(p.mu);
                p.backoff_ms = 0; // Down is not a retry loop.
            }
            if (stopping)
                break;
            continue;
        }

        bool io_failed = false;
        bool did_work = false;

        // 1) Drain hints first — oldest data, one batch per pass so
        //    fresh queue traffic interleaves. Skipped at stop (the
        //    file preserves them for the next run).
        if (!stopping && p.hints->size() > 0) {
            const auto batch = p.hints->peek(cfg_.max_batch);
            uint64_t merged = 0;
            bool peer_acked = false;
            if (shipEntries(p, batch, &merged, &peer_acked)) {
                p.hints->popFront(batch.size());
                MutexLock lk(p.mu);
                if (peer_acked)
                    p.hints_shipped += batch.size();
                p.merged += merged;
            } else {
                io_failed = true;
            }
            did_work = true;
        }

        // 2) Anti-entropy round, if scheduled.
        bool sync_wanted = false;
        {
            MutexLock lk(p.mu);
            sync_wanted = p.sync_pending;
        }
        if (!stopping && !io_failed && sync_wanted) {
            size_t pulled = 0;
            bool more = false;
            if (syncRound(p, &pulled, &more)) {
                MutexLock lk(p.mu);
                ++p.sync_rounds;
                p.sync_pulled += pulled;
                if (!more)
                    p.sync_pending = false;
            } else {
                io_failed = true;
            }
            did_work = true;
        }

        // 3) The live queue.
        std::vector<Item> batch;
        if (!io_failed) {
            MutexLock lk(p.mu);
            const size_t n = std::min(cfg_.max_batch, p.q.size());
            batch.assign(p.q.begin(),
                         p.q.begin() + static_cast<long>(n));
        }
        if (!io_failed && !batch.empty()) {
            // Network I/O with the queue unlocked: enqueue() never
            // blocks behind a slow peer.
            std::vector<StoreEntry> entries;
            entries.reserve(batch.size());
            for (const Item &it : batch)
                entries.push_back(it.entry);
            uint64_t merged = 0;
            bool peer_acked = false;
            if (shipEntries(p, entries, &merged, &peer_acked)) {
                const uint64_t last_seq = batch.back().seq;
                MutexLock lk(p.mu);
                p.shipped += batch.size();
                if (peer_acked)
                    p.acked += batch.size();
                p.merged += merged;
                // Pop exactly what was shipped: drop-oldest may have
                // advanced the front past (never into) this batch.
                while (!p.q.empty() && p.q.front().seq <= last_seq)
                    p.q.pop_front();
            } else {
                io_failed = true;
            }
            did_work = true;
        }

        if (io_failed) {
            int backoff = 0;
            {
                MutexLock lk(p.mu);
                ++p.ship_failures;
                p.backoff_ms =
                    replicationNextBackoffMs(p.backoff_ms, cfg_);
                backoff = p.backoff_ms;
            }
            if (stopping_.load())
                break; // One best-effort attempt per batch at stop.
            // Sleep in small slices so stop() stays responsive.
            const double until = nowSeconds() + backoff / 1e3;
            while (!stopping_.load() && nowSeconds() < until)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
        } else if (did_work) {
            MutexLock lk(p.mu);
            p.backoff_ms = 0;
        }

        if (stopping_.load()) {
            MutexLock lk(p.mu);
            if (p.q.empty())
                break;
        }
    }
    if (p.fd >= 0) {
        closeSocket(p.fd);
        p.fd = -1;
    }
}

void
ReplicationAgent::stop()
{
    if (stopping_.exchange(true))
        return;
    for (auto &p : peers_)
        p->cv.notify_all();
    for (auto &p : peers_)
        if (p->worker.joinable())
            p->worker.join();
}

size_t
ReplicationAgent::queueDepth() const
{
    size_t total = 0;
    for (const auto &p : peers_) {
        MutexLock lk(p->mu);
        total += p->q.size();
    }
    return total;
}

size_t
ReplicationAgent::hintDepth() const
{
    size_t total = 0;
    for (const auto &p : peers_)
        total += p->hints->size();
    return total;
}

bool
ReplicationAgent::syncPending(const std::string &addr) const
{
    for (const auto &p : peers_) {
        if (p->addr != addr)
            continue;
        MutexLock lk(p->mu);
        return p->sync_pending;
    }
    return false;
}

JsonValue
ReplicationAgent::statsJson() const
{
    JsonValue j = JsonValue::object();
    j["replication_factor"] = cluster_.replicationClamped();
    j["num_peers"] = peers_.size();
    uint64_t depth = 0, shipped = 0, acked = 0, merged = 0;
    uint64_t dropped = 0, failures = 0;
    uint64_t hints_queued = 0, hints_dropped = 0, hints_shipped = 0;
    uint64_t sync_rounds = 0, sync_pulled = 0;
    double oldest = 0.0;
    const double now = nowSeconds();
    JsonValue &peers = j["peers"];
    peers = JsonValue::object();
    for (const auto &p : peers_) {
        const size_t hq = p->hints->size();
        const uint64_t hd = p->hints->dropped();
        const PeerHealth health = peerHealth(*p);
        MutexLock lk(p->mu);
        JsonValue &pp = peers[p->addr];
        pp["queue_depth"] = p->q.size();
        pp["shipped"] = p->shipped;
        pp["acked"] = p->acked;
        pp["merged_by_peer"] = p->merged;
        pp["dropped"] = p->dropped;
        pp["ship_failures"] = p->ship_failures;
        pp["backoff_ms"] = p->backoff_ms;
        pp["health"] = peerHealthName(health);
        pp["hints_queued"] = hq;
        pp["hints_dropped"] = hd;
        pp["hints_shipped"] = p->hints_shipped;
        const double lag =
            p->q.empty() ? 0.0 : now - p->q.front().enqueued_at;
        pp["lag_s"] = lag;
        oldest = std::max(oldest, lag);
        depth += p->q.size();
        shipped += p->shipped;
        acked += p->acked;
        merged += p->merged;
        dropped += p->dropped;
        failures += p->ship_failures;
        hints_queued += hq;
        hints_dropped += hd;
        hints_shipped += p->hints_shipped;
        sync_rounds += p->sync_rounds;
        sync_pulled += p->sync_pulled;
    }
    j["queue_depth"] = depth;
    j["shipped"] = shipped;
    j["acked"] = acked;
    j["merged_by_peers"] = merged;
    j["dropped"] = dropped;
    j["ship_failures"] = failures;
    j["hints_queued"] = hints_queued;
    j["hints_dropped"] = hints_dropped;
    j["hints_shipped"] = hints_shipped;
    j["sync_rounds"] = sync_rounds;
    j["sync_pulled"] = sync_pulled;
    j["lag_s"] = oldest;
    return j;
}

} // namespace mse

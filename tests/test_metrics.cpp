/**
 * @file
 * ServiceMetrics / LatencyHistogram edge cases: empty and single-sample
 * histograms, values beyond the top log bucket, degenerate inputs, and
 * increment consistency under concurrent writers.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/metrics.hpp"

namespace mse {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram: empty.
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, EmptyHistogramReportsZeroes)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
        EXPECT_EQ(h.percentile(q), 0.0) << "q=" << q;
}

TEST(LatencyHistogram, EmptyHistogramJsonIsAllZero)
{
    const JsonValue j = LatencyHistogram{}.toJson();
    EXPECT_EQ(j.getInt("count", -1), 0);
    EXPECT_EQ(j.getDouble("mean_s", -1.0), 0.0);
    EXPECT_EQ(j.getDouble("p50_s", -1.0), 0.0);
    EXPECT_EQ(j.getDouble("p99_s", -1.0), 0.0);
}

// ---------------------------------------------------------------------------
// LatencyHistogram: single sample.
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, SingleSampleClampsAllPercentilesToIt)
{
    LatencyHistogram h;
    h.record(0.125);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 0.125);
    EXPECT_EQ(h.max(), 0.125);
    EXPECT_EQ(h.mean(), 0.125);
    // Interpolation inside the winning bucket is clamped to the
    // observed [min, max], so every percentile is exactly the sample.
    for (double q : {0.0, 0.01, 0.5, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(h.percentile(q), 0.125) << "q=" << q;
}

TEST(LatencyHistogram, PercentileQuantileIsClampedToUnitRange)
{
    LatencyHistogram h;
    h.record(2.0);
    EXPECT_DOUBLE_EQ(h.percentile(-3.0), 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(7.5), 2.0);
}

// ---------------------------------------------------------------------------
// LatencyHistogram: degenerate and beyond-range values.
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, ZeroAndNegativeLatenciesLandInBucketZero)
{
    LatencyHistogram h;
    h.record(0.0);
    h.record(-1.0); // Clock skew paranoia: must not crash or underflow.
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.min(), -1.0);
    // With no positive max the percentile falls back to the bucket-0
    // interpolation; it must stay finite and above the observed min.
    const double p = h.percentile(0.5);
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GE(p, h.min());
    EXPECT_LT(p, 1e-5); // bucket 0 territory, not garbage
}

TEST(LatencyHistogram, ValueBeyondTopBucketIsClampedNotLost)
{
    LatencyHistogram h;
    // Bucket i spans [2^(i-20), 2^(i-19)); the top bucket starts at
    // 2^(kBuckets-21) s. Record something far past it.
    const double huge = std::ldexp(1.0, LatencyHistogram::kBuckets);
    h.record(huge);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.max(), huge);
    // The sample is counted (clamped into the top bucket) and the
    // percentile clamps to the observed max, not the bucket edge.
    EXPECT_DOUBLE_EQ(h.percentile(0.99), huge);
}

TEST(LatencyHistogram, MixedInAndBeyondRangeKeepsCountsConsistent)
{
    LatencyHistogram h;
    h.record(1e-9);  // below bucket 0's nominal range
    h.record(0.001);
    h.record(1.0);
    h.record(1e12);  // beyond the top bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 1e-9 + 0.001 + 1.0 + 1e12);
    EXPECT_EQ(h.min(), 1e-9);
    EXPECT_EQ(h.max(), 1e12);
    // Percentiles are monotone in q and bounded by [min, max].
    double prev = h.percentile(0.0);
    for (double q : {0.25, 0.5, 0.75, 0.95, 1.0}) {
        const double v = h.percentile(q);
        EXPECT_GE(v, prev) << "q=" << q;
        EXPECT_GE(v, h.min());
        EXPECT_LE(v, h.max());
        prev = v;
    }
}

// ---------------------------------------------------------------------------
// ServiceMetrics: snapshot shape on edge inputs.
// ---------------------------------------------------------------------------

TEST(ServiceMetrics, FreshRegistrySnapshotsZeroes)
{
    ServiceMetrics m;
    EXPECT_EQ(m.queueDepth(), 0u);
    const JsonValue j = m.toJson();
    const JsonValue *req = j.find("requests");
    ASSERT_NE(req, nullptr);
    EXPECT_EQ(req->getInt("total", -1), 0);
    const JsonValue *lat = j.find("latency");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->getInt("count", -1), 0);
    const JsonValue *search = j.find("search");
    ASSERT_NE(search, nullptr);
    EXPECT_EQ(search->getDouble("eval_cache_hit_rate", -1.0), 0.0);
}

TEST(ServiceMetrics, QueueDepthNeverUnderflows)
{
    ServiceMetrics m;
    m.onDequeue(); // Dequeue without a matching enqueue.
    EXPECT_EQ(m.queueDepth(), 0u);
    m.onEnqueue();
    EXPECT_EQ(m.queueDepth(), 0u); // 1 enqueued, 1 dequeued.
}

TEST(ServiceMetrics, SearchSampleSplitsStoreKinds)
{
    ServiceMetrics m;
    ServiceMetrics::SearchSample s;
    s.store_kind = 2;
    m.onSearchDone(s);
    s.store_kind = 1;
    m.onSearchDone(s);
    s.store_kind = 0;
    s.timed_out = true;
    m.onSearchDone(s);
    const JsonValue j = m.toJson();
    const JsonValue *store = j.find("store");
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->getInt("exact_hits", -1), 1);
    EXPECT_EQ(store->getInt("near_hits", -1), 1);
    EXPECT_EQ(store->getInt("cold", -1), 1);
    EXPECT_EQ(j.find("search")->getInt("timed_out", -1), 1);
    EXPECT_EQ(j.find("latency")->getInt("count", -1), 3);
}

// ---------------------------------------------------------------------------
// ServiceMetrics: concurrent increment consistency.
// ---------------------------------------------------------------------------

TEST(ServiceMetrics, ConcurrentIncrementsNeverDropUpdates)
{
    ServiceMetrics m;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 500;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&m, t] {
            for (int i = 0; i < kPerThread; ++i) {
                m.onRequest(t % 2 == 0 ? "search" : "stats");
                m.onEnqueue();
                ServiceMetrics::SearchSample s;
                s.latency_seconds = 0.001 * (t + 1);
                s.samples = 10;
                s.eval_cache_hits = 3;
                s.eval_cache_misses = 7;
                s.store_kind = t % 3;
                m.onSearchDone(s);
                m.onDequeue();
            }
        });
    }
    for (auto &th : threads)
        th.join();

    constexpr uint64_t kTotal =
        static_cast<uint64_t>(kThreads) * kPerThread;
    EXPECT_EQ(m.queueDepth(), 0u);
    const JsonValue j = m.toJson();
    EXPECT_EQ(static_cast<uint64_t>(
                  j.find("requests")->getInt("total", -1)),
              kTotal);
    const JsonValue *search = j.find("search");
    ASSERT_NE(search, nullptr);
    EXPECT_EQ(static_cast<uint64_t>(
                  search->getInt("samples_total", -1)),
              kTotal * 10);
    EXPECT_EQ(static_cast<uint64_t>(
                  search->getInt("eval_cache_hits", -1)),
              kTotal * 3);
    EXPECT_EQ(static_cast<uint64_t>(
                  search->getInt("eval_cache_misses", -1)),
              kTotal * 7);
    EXPECT_NEAR(search->getDouble("eval_cache_hit_rate", -1.0), 0.3,
                1e-12);
    const JsonValue *lat = j.find("latency");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(static_cast<uint64_t>(lat->getInt("count", -1)), kTotal);
    // Store kinds partition the samples.
    const JsonValue *store = j.find("store");
    const int64_t split = store->getInt("exact_hits", 0) +
        store->getInt("near_hits", 0) + store->getInt("cold", 0);
    EXPECT_EQ(static_cast<uint64_t>(split), kTotal);
}

} // namespace
} // namespace mse

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace mse {
namespace {

TEST(Rng, DeterministicGivenSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1 << 30), b.uniformInt(0, 1 << 30));
}

TEST(Rng, SeedsDiverge)
{
    Rng a(1), b(2);
    bool differed = false;
    for (int i = 0; i < 10 && !differed; ++i)
        differed = a.uniformInt(0, 1 << 30) != b.uniformInt(0, 1 << 30);
    EXPECT_TRUE(differed);
}

TEST(Rng, UniformIntBoundsInclusive)
{
    Rng rng(3);
    std::set<int64_t> seen;
    for (int i = 0; i < 200; ++i) {
        const int64_t v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all values reachable
}

TEST(Rng, IndexCoversRange)
{
    Rng rng(4);
    std::set<size_t> seen;
    for (int i = 0; i < 300; ++i)
        seen.insert(rng.index(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformRealInHalfOpenInterval)
{
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const double v = rng.uniformReal(-1.0, 1.0);
        EXPECT_GE(v, -1.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(6);
    double sum = 0, sum2 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian(2.0, 3.0);
        sum += v;
        sum2 += v * v;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.1);
    EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ShuffleIsAPermutation)
{
    Rng rng(8);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    auto resorted = v;
    std::sort(resorted.begin(), resorted.end());
    EXPECT_EQ(resorted, sorted);
}

TEST(Rng, PickReturnsMember)
{
    Rng rng(9);
    const std::vector<int> v = {10, 20, 30};
    for (int i = 0; i < 30; ++i) {
        const int p = rng.pick(v);
        EXPECT_TRUE(p == 10 || p == 20 || p == 30);
    }
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng rng(11);
    const int64_t first = rng.uniformInt(0, 1 << 20);
    rng.uniformInt(0, 1 << 20);
    rng.seed(11);
    EXPECT_EQ(rng.uniformInt(0, 1 << 20), first);
}

} // namespace
} // namespace mse

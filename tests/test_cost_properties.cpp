/**
 * @file
 * Cross-architecture property sweep for the cost model: invariants that
 * must hold for every (workload, architecture, mapping) triple.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "model/cost_model.hpp"
#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

struct Combo
{
    const char *name;
    Workload wl;
    ArchConfig arch;
};

std::vector<Combo>
combos()
{
    return {
        {"conv4/accelA", resnetConv4(), accelA()},
        {"conv4/accelB", resnetConv4(), accelB()},
        {"conv3/deep", resnetConv3(),
         makeDeepNpu("deep", 64 * 1024, 2048, 64, 64, 4)},
        {"kqv/accelB", bertKqv(), accelB()},
        {"dw/accelB", makeDepthwiseConv2d("dw", 4, 32, 14, 14, 3, 3),
         accelB()},
        {"attn/mini", bertAttn(), test::miniNpu()},
        {"tiny/flat", test::tinyConv(), test::flatArch()},
    };
}

class CostPropertyP : public ::testing::TestWithParam<int>
{
  protected:
    Combo combo_ = combos()[static_cast<size_t>(GetParam())];
};

TEST_P(CostPropertyP, EnergyAndLatencyArePositiveAndFinite)
{
    MapSpace space(combo_.wl, combo_.arch);
    Rng rng(100 + GetParam());
    for (int i = 0; i < 60; ++i) {
        const CostResult r = CostModel::evaluate(
            combo_.wl, combo_.arch, space.randomMapping(rng));
        ASSERT_TRUE(r.valid) << combo_.name;
        EXPECT_GT(r.energy_uj, 0.0);
        EXPECT_GT(r.latency_cycles, 0.0);
        EXPECT_TRUE(std::isfinite(r.edp));
    }
}

TEST_P(CostPropertyP, LatencyIsRooflineBound)
{
    MapSpace space(combo_.wl, combo_.arch);
    Rng rng(200 + GetParam());
    for (int i = 0; i < 60; ++i) {
        const CostResult r = CostModel::evaluate(
            combo_.wl, combo_.arch, space.randomMapping(rng));
        ASSERT_TRUE(r.valid);
        double bound = r.compute_cycles;
        for (double c : r.level_cycles)
            bound = std::max(bound, c);
        EXPECT_DOUBLE_EQ(r.latency_cycles, bound) << combo_.name;
    }
}

TEST_P(CostPropertyP, EnergyNeverBelowCompulsoryTraffic)
{
    // Lower bound: every tensor crosses DRAM once + all MACs happen.
    const auto &wl = combo_.wl;
    const auto &arch = combo_.arch;
    double floor_pj = wl.totalMacs() * arch.mac_energy_pj;
    const auto &dram = arch.levels.back();
    for (int t = 0; t < wl.numTensors(); ++t) {
        floor_pj += wl.tensorVolume(t) *
            (t == wl.outputTensor() ? dram.write_energy_pj
                                    : dram.read_energy_pj);
    }
    MapSpace space(wl, arch);
    Rng rng(300 + GetParam());
    for (int i = 0; i < 40; ++i) {
        const CostResult r =
            CostModel::evaluate(wl, arch, space.randomMapping(rng));
        ASSERT_TRUE(r.valid);
        EXPECT_GE(r.energy_uj, 0.999 * floor_pj * 1e-6) << combo_.name;
    }
}

TEST_P(CostPropertyP, ComputeCyclesMatchSpatialProducts)
{
    MapSpace space(combo_.wl, combo_.arch);
    Rng rng(400 + GetParam());
    for (int i = 0; i < 40; ++i) {
        const Mapping m = space.randomMapping(rng);
        const CostResult r =
            CostModel::evaluate(combo_.wl, combo_.arch, m);
        ASSERT_TRUE(r.valid);
        double alus = 1;
        for (int l = 0; l < m.numLevels(); ++l)
            alus *= static_cast<double>(m.spatialProduct(l));
        EXPECT_NEAR(r.compute_cycles, combo_.wl.totalMacs() / alus,
                    1e-6 * r.compute_cycles);
    }
}

TEST_P(CostPropertyP, MovingLoopsDownNeverChangesMacCount)
{
    MapSpace space(combo_.wl, combo_.arch);
    Rng rng(500 + GetParam());
    const Mapping a = space.randomMapping(rng);
    const Mapping b = space.randomMapping(rng);
    const AccessCounts ca =
        computeAccessCounts(combo_.wl, combo_.arch, a);
    const AccessCounts cb =
        computeAccessCounts(combo_.wl, combo_.arch, b);
    EXPECT_DOUBLE_EQ(ca.macs, cb.macs);
    EXPECT_DOUBLE_EQ(ca.macs, combo_.wl.totalMacs());
}

INSTANTIATE_TEST_SUITE_P(Combos, CostPropertyP,
                         ::testing::Range(0, 7));

} // namespace
} // namespace mse

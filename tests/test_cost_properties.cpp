/**
 * @file
 * Cross-architecture property sweep for the cost model: invariants that
 * must hold for every (workload, architecture, mapping) triple.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/mse_engine.hpp"
#include "mappers/gamma.hpp"
#include "model/cost_model.hpp"
#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

struct Combo
{
    const char *name;
    Workload wl;
    ArchConfig arch;
};

std::vector<Combo>
combos()
{
    return {
        {"conv4/accelA", resnetConv4(), accelA()},
        {"conv4/accelB", resnetConv4(), accelB()},
        {"conv3/deep", resnetConv3(),
         makeDeepNpu("deep", 64 * 1024, 2048, 64, 64, 4)},
        {"kqv/accelB", bertKqv(), accelB()},
        {"dw/accelB", makeDepthwiseConv2d("dw", 4, 32, 14, 14, 3, 3),
         accelB()},
        {"attn/mini", bertAttn(), test::miniNpu()},
        {"tiny/flat", test::tinyConv(), test::flatArch()},
    };
}

class CostPropertyP : public ::testing::TestWithParam<int>
{
  protected:
    Combo combo_ = combos()[static_cast<size_t>(GetParam())];
};

TEST_P(CostPropertyP, EnergyAndLatencyArePositiveAndFinite)
{
    MapSpace space(combo_.wl, combo_.arch);
    Rng rng(100 + GetParam());
    for (int i = 0; i < 60; ++i) {
        const CostResult r = CostModel::evaluate(
            combo_.wl, combo_.arch, space.randomMapping(rng));
        ASSERT_TRUE(r.valid) << combo_.name;
        EXPECT_GT(r.energy_uj, 0.0);
        EXPECT_GT(r.latency_cycles, 0.0);
        EXPECT_TRUE(std::isfinite(r.edp));
    }
}

TEST_P(CostPropertyP, LatencyIsRooflineBound)
{
    MapSpace space(combo_.wl, combo_.arch);
    Rng rng(200 + GetParam());
    for (int i = 0; i < 60; ++i) {
        const CostResult r = CostModel::evaluate(
            combo_.wl, combo_.arch, space.randomMapping(rng));
        ASSERT_TRUE(r.valid);
        double bound = r.compute_cycles;
        for (double c : r.level_cycles)
            bound = std::max(bound, c);
        EXPECT_DOUBLE_EQ(r.latency_cycles, bound) << combo_.name;
    }
}

TEST_P(CostPropertyP, EnergyNeverBelowCompulsoryTraffic)
{
    // Lower bound: every tensor crosses DRAM once + all MACs happen.
    const auto &wl = combo_.wl;
    const auto &arch = combo_.arch;
    double floor_pj = wl.totalMacs() * arch.mac_energy_pj;
    const auto &dram = arch.levels.back();
    for (int t = 0; t < wl.numTensors(); ++t) {
        floor_pj += wl.tensorVolume(t) *
            (t == wl.outputTensor() ? dram.write_energy_pj
                                    : dram.read_energy_pj);
    }
    MapSpace space(wl, arch);
    Rng rng(300 + GetParam());
    for (int i = 0; i < 40; ++i) {
        const CostResult r =
            CostModel::evaluate(wl, arch, space.randomMapping(rng));
        ASSERT_TRUE(r.valid);
        EXPECT_GE(r.energy_uj, 0.999 * floor_pj * 1e-6) << combo_.name;
    }
}

TEST_P(CostPropertyP, ComputeCyclesMatchSpatialProducts)
{
    MapSpace space(combo_.wl, combo_.arch);
    Rng rng(400 + GetParam());
    for (int i = 0; i < 40; ++i) {
        const Mapping m = space.randomMapping(rng);
        const CostResult r =
            CostModel::evaluate(combo_.wl, combo_.arch, m);
        ASSERT_TRUE(r.valid);
        double alus = 1;
        for (int l = 0; l < m.numLevels(); ++l)
            alus *= static_cast<double>(m.spatialProduct(l));
        EXPECT_NEAR(r.compute_cycles, combo_.wl.totalMacs() / alus,
                    1e-6 * r.compute_cycles);
    }
}

TEST_P(CostPropertyP, MovingLoopsDownNeverChangesMacCount)
{
    MapSpace space(combo_.wl, combo_.arch);
    Rng rng(500 + GetParam());
    const Mapping a = space.randomMapping(rng);
    const Mapping b = space.randomMapping(rng);
    const AccessCounts ca =
        computeAccessCounts(combo_.wl, combo_.arch, a);
    const AccessCounts cb =
        computeAccessCounts(combo_.wl, combo_.arch, b);
    EXPECT_DOUBLE_EQ(ca.macs, cb.macs);
    EXPECT_DOUBLE_EQ(ca.macs, combo_.wl.totalMacs());
}

TEST_P(CostPropertyP, ScalingAWorkloadDimNeverDecreasesEnergy)
{
    // Doubling one dimension bound (and absorbing the growth into the
    // outermost temporal loop, which leaves every inner tile footprint
    // and all spatial products unchanged) doubles the MAC count and can
    // only add traffic — total energy must not go down.
    const Workload &wl = combo_.wl;
    MapSpace space(wl, combo_.arch);
    Rng rng(600 + GetParam());
    for (int d = 0; d < wl.numDims(); ++d) {
        std::vector<int64_t> bounds = wl.bounds();
        bounds[d] *= 2;
        const Workload scaled("scaled", wl.dimNames(), bounds,
                              wl.tensors());

        const Mapping m = space.randomMapping(rng);
        Mapping m2 = m;
        m2.level(m2.numLevels() - 1).temporal[d] *= 2;
        ASSERT_EQ(validateMapping(scaled, combo_.arch, m2),
                  MappingError::Ok)
            << combo_.name << " dim " << d;

        const CostResult base =
            CostModel::evaluate(wl, combo_.arch, m);
        const CostResult grown =
            CostModel::evaluate(scaled, combo_.arch, m2);
        ASSERT_TRUE(base.valid && grown.valid);
        EXPECT_GE(grown.energy_uj, base.energy_uj)
            << combo_.name << " dim " << d;
    }
}

TEST_P(CostPropertyP, CanonicallyEquivalentMappingsEvaluateIdentically)
{
    // The eval cache treats two rewrites as identity: permuting loops
    // inside a run of temporal-factor-1 positions, and spelling the
    // default keep-everything mask explicitly. Both must be invisible
    // to the cost model bit-for-bit, or cache hits would change costs.
    MapSpace space(combo_.wl, combo_.arch);
    Rng rng(700 + GetParam());
    const int tensors = combo_.wl.numTensors();
    for (int i = 0; i < 30; ++i) {
        const Mapping m = space.randomMapping(rng);
        Mapping variant = m;
        for (int l = 0; l < variant.numLevels(); ++l) {
            auto &lvl = variant.level(l);
            // Reverse every maximal run of unit-temporal loops.
            size_t a = 0;
            while (a < lvl.order.size()) {
                size_t b = a;
                while (b < lvl.order.size() &&
                       lvl.temporal[lvl.order[b]] == 1)
                    ++b;
                if (b > a)
                    std::reverse(lvl.order.begin() + a,
                                 lvl.order.begin() + b);
                a = std::max(b, a + 1);
            }
            if (lvl.keep.empty())
                lvl.keep.assign(static_cast<size_t>(tensors), 1);
        }
        ASSERT_TRUE(variant == m) << combo_.name;
        ASSERT_EQ(variant.hash(), m.hash()) << combo_.name;

        const CostResult ra =
            CostModel::evaluate(combo_.wl, combo_.arch, m);
        const CostResult rb =
            CostModel::evaluate(combo_.wl, combo_.arch, variant);
        ASSERT_EQ(ra.valid, rb.valid);
        EXPECT_EQ(ra.energy_uj, rb.energy_uj) << combo_.name;
        EXPECT_EQ(ra.latency_cycles, rb.latency_cycles) << combo_.name;
        EXPECT_EQ(ra.edp, rb.edp) << combo_.name;
    }
}

TEST_P(CostPropertyP, CachedAndUncachedSearchesShareTheIncumbent)
{
    // The memoizing cache must be invisible to the search: same seed,
    // cache on vs. off, identical incumbent and per-sample trace.
    MseOptions on, off;
    on.budget.max_samples = off.budget.max_samples = 300;
    on.use_eval_cache = true;
    off.use_eval_cache = false;

    MseEngine engine_on(combo_.arch), engine_off(combo_.arch);
    GammaMapper gamma_on, gamma_off;
    Rng rng_on(800 + GetParam()), rng_off(800 + GetParam());
    const MseOutcome a =
        engine_on.optimize(combo_.wl, gamma_on, on, rng_on);
    const MseOutcome b =
        engine_off.optimize(combo_.wl, gamma_off, off, rng_off);

    EXPECT_EQ(a.search.best_cost.edp, b.search.best_cost.edp)
        << combo_.name;
    EXPECT_TRUE(a.search.best_mapping == b.search.best_mapping)
        << combo_.name;
    EXPECT_EQ(a.search.log.best_edp_per_sample,
              b.search.log.best_edp_per_sample)
        << combo_.name;
    EXPECT_GT(a.eval_cache_hits + a.eval_cache_misses, 0u);
    EXPECT_EQ(b.eval_cache_hits + b.eval_cache_misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Combos, CostPropertyP,
                         ::testing::Range(0, 7));

} // namespace
} // namespace mse

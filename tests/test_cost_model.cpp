#include <gtest/gtest.h>

#include <cmath>

#include "model/cost_model.hpp"
#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

using test::allAtTop;
using test::flatArch;
using test::tinyGemm;

/**
 * Hand-checked traffic for GEMM B=1,M=2,K=2,N=2 with every loop at DRAM
 * in order (B,M,K,N) on a two-level machine. See the derivation in the
 * assertions: A is read once per element, W re-streams per M iteration,
 * and O is written back as partials because K sits outside N.
 */
TEST(AccessCounts, HandComputedGemmAllAtTop)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    const Mapping m = allAtTop(wl, arch);
    ASSERT_EQ(validateMapping(wl, arch, m), MappingError::Ok);

    const AccessCounts c = computeAccessCounts(wl, arch, m);
    const int A = 0, W = 1, O = 2;
    EXPECT_DOUBLE_EQ(c.macs, 8.0);
    EXPECT_DOUBLE_EQ(c.active_alus, 1.0);

    // A[B,M,K]: innermost relevant DRAM loop is K -> 4 fetches (volume).
    EXPECT_DOUBLE_EQ(c.access[1][A].reads, 4.0);
    EXPECT_DOUBLE_EQ(c.access[0][A].writes, 4.0);
    EXPECT_DOUBLE_EQ(c.access[0][A].reads, 4.0);
    EXPECT_DOUBLE_EQ(c.access[1][A].writes, 0.0); // DRAM pre-loaded

    // W[K,N]: innermost relevant loop is N (the full nest) -> 8 fetches,
    // i.e. the 4 words re-stream once per M iteration.
    EXPECT_DOUBLE_EQ(c.access[1][W].reads, 8.0);
    EXPECT_DOUBLE_EQ(c.access[0][W].writes, 8.0);
    EXPECT_DOUBLE_EQ(c.access[0][W].reads, 8.0);

    // O[B,M,N]: K outside N forces partial-sum writebacks: 8 writes to
    // DRAM (2 per output word), 4 partial re-reads from DRAM.
    EXPECT_DOUBLE_EQ(c.access[1][O].writes, 8.0);
    EXPECT_DOUBLE_EQ(c.access[1][O].reads, 4.0);
    // L1: one update per MAC (8), 4 local psum re-reads plus 8 reads
    // feeding the DRAM writebacks.
    EXPECT_DOUBLE_EQ(c.access[0][O].writes, 8.0);
    EXPECT_DOUBLE_EQ(c.access[0][O].reads, 12.0);
}

TEST(AccessCounts, ReductionInnermostCompletesAccumulationLocally)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    Mapping m = allAtTop(wl, arch);
    // Order (B,M,N,K): K innermost -> each output leaves L1 exactly once.
    m.level(1).order = {0, 1, 3, 2};
    const AccessCounts c = computeAccessCounts(wl, arch, m);
    const int O = 2;
    EXPECT_DOUBLE_EQ(c.access[1][O].writes, 4.0); // output volume
    EXPECT_DOUBLE_EQ(c.access[1][O].reads, 0.0);  // no psum refetch
}

TEST(AccessCounts, IrrelevantInnerLoopGivesReuse)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    Mapping base = allAtTop(wl, arch);

    // N innermost (irrelevant to A): A reads from DRAM = volume = 4.
    base.level(1).order = {0, 1, 2, 3};
    const auto reuse = computeAccessCounts(wl, arch, base);
    // N outermost: every A element re-fetched per N iteration.
    Mapping worse = base;
    worse.level(1).order = {3, 0, 1, 2};
    const auto refetch = computeAccessCounts(wl, arch, worse);
    EXPECT_DOUBLE_EQ(reuse.access[1][0].reads, 4.0);
    EXPECT_DOUBLE_EQ(refetch.access[1][0].reads, 8.0);
}

TEST(AccessCounts, MulticastChargesParentOnce)
{
    // GEMM on a machine with 4 PEs; parallelize N across PEs: W and O
    // are split (relevant), A is multicast (irrelevant).
    const Workload wl = makeGemm("g", 1, 4, 4, 4);
    const ArchConfig arch = makeNpu("npu4", 1 << 16, 1 << 12, 4, 1);
    Mapping m(3, 4);
    for (int d = 0; d < 4; ++d)
        m.level(2).temporal[d] = wl.bound(d);
    m.level(2).temporal[3] = 1;
    m.level(1).spatial[3] = 4; // N across PEs
    ASSERT_EQ(validateMapping(wl, arch, m), MappingError::Ok);
    const AccessCounts c = computeAccessCounts(wl, arch, m);
    const int A = 0;
    // Each PE's L1 receives the full A stream (fills count per PE), but
    // the L2 reads it once thanks to multicast.
    EXPECT_DOUBLE_EQ(c.access[0][A].writes / c.access[1][A].reads, 4.0);
}

TEST(AccessCounts, SpatialPartitioningCountsDistinctData)
{
    const Workload wl = makeGemm("g", 1, 4, 4, 4);
    const ArchConfig arch = makeNpu("npu4", 1 << 16, 1 << 12, 4, 1);
    Mapping m(3, 4);
    for (int d = 0; d < 4; ++d)
        m.level(2).temporal[d] = wl.bound(d);
    m.level(2).temporal[1] = 1;
    m.level(1).spatial[1] = 4; // M across PEs: A and O split, W multicast
    const AccessCounts c = computeAccessCounts(wl, arch, m);
    const int A = 0, W = 1;
    // A relevant to M: L2 reads scale with the spatial split.
    EXPECT_DOUBLE_EQ(c.access[1][A].reads, c.access[0][A].writes);
    // W irrelevant to M: multicast factor 4.
    EXPECT_DOUBLE_EQ(c.access[0][W].writes / c.access[1][W].reads, 4.0);
}

TEST(CostModel, InvalidMappingGetsInfiniteEdp)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    Mapping m(arch.numLevels(), wl.numDims()); // products are wrong
    const CostResult r = CostModel::evaluate(wl, arch, m);
    EXPECT_FALSE(r.valid);
    EXPECT_EQ(r.error, MappingError::BadFactorProduct);
    EXPECT_TRUE(std::isinf(r.edp));
}

TEST(CostModel, EdpIsEnergyTimesLatency)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(1);
    for (int i = 0; i < 20; ++i) {
        const CostResult r =
            CostModel::evaluate(wl, arch, space.randomMapping(rng));
        ASSERT_TRUE(r.valid);
        EXPECT_DOUBLE_EQ(r.edp, r.energy_uj * r.latency_cycles);
        EXPECT_GE(r.latency_cycles, r.compute_cycles);
        EXPECT_GT(r.utilization, 0.0);
        EXPECT_LE(r.utilization, 1.0 + 1e-12);
    }
}

class TrafficLowerBoundP : public ::testing::TestWithParam<int>
{
};

TEST_P(TrafficLowerBoundP, DramTrafficCoversTensorVolumes)
{
    // Every input word must cross the DRAM boundary at least once and
    // every output word must be written back at least once, whatever the
    // mapping.
    const std::vector<Workload> wls = {resnetConv3(), resnetConv4(),
                                       bertKqv(), test::tinyConv()};
    const Workload wl = wls[static_cast<size_t>(GetParam())];
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(31 + GetParam());
    const int dram = arch.numLevels() - 1;
    for (int i = 0; i < 100; ++i) {
        const Mapping m = space.randomMapping(rng);
        const AccessCounts c = computeAccessCounts(wl, arch, m);
        for (int t = 0; t < wl.numTensors(); ++t) {
            if (t == wl.outputTensor()) {
                EXPECT_GE(c.access[dram][t].writes,
                          0.999 * wl.tensorVolume(t));
            } else {
                EXPECT_GE(c.access[dram][t].reads,
                          0.999 * wl.tensorVolume(t));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, TrafficLowerBoundP,
                         ::testing::Range(0, 4));

TEST(CostModel, MoreParallelismFewerComputeCycles)
{
    const Workload wl = makeGemm("g", 1, 16, 16, 16);
    const ArchConfig arch = makeNpu("npu", 1 << 16, 1 << 12, 16, 1);
    Mapping serial(3, 4);
    for (int d = 0; d < 4; ++d)
        serial.level(2).temporal[d] = wl.bound(d);
    Mapping parallel = serial;
    parallel.level(2).temporal[1] = 1;
    parallel.level(1).spatial[1] = 16;
    const auto rs = CostModel::evaluate(wl, arch, serial);
    const auto rp = CostModel::evaluate(wl, arch, parallel);
    ASSERT_TRUE(rs.valid && rp.valid);
    EXPECT_DOUBLE_EQ(rs.compute_cycles / rp.compute_cycles, 16.0);
    EXPECT_DOUBLE_EQ(rp.utilization, 1.0);
}

TEST(CostModel, EnergyBreakdownSumsToTotal)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(77);
    const Mapping m = space.randomMapping(rng);
    const CostResult r = CostModel::evaluate(wl, arch, m);
    double sum = r.macs * arch.mac_energy_pj * 1e-6;
    for (double e : r.level_energy_uj)
        sum += e;
    EXPECT_NEAR(sum, r.energy_uj, 1e-9 * r.energy_uj);
}

TEST(CostModel, GoodBadMappingSpreadIsOrdersOfMagnitude)
{
    // Sec. 4.4: mappings of the same problem differ by up to ~3 orders
    // of magnitude. Sampling randomly should already expose a >=100x
    // spread between the best and worst legal mapping.
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(123);
    double best = std::numeric_limits<double>::infinity(), worst = 0.0;
    for (int i = 0; i < 2000; ++i) {
        const CostResult r =
            CostModel::evaluate(wl, arch, space.randomMapping(rng));
        if (!r.valid)
            continue;
        best = std::min(best, r.edp);
        worst = std::max(worst, r.edp);
    }
    EXPECT_GT(worst / best, 100.0);
}

TEST(CostModel, DeterministicForSameMapping)
{
    const Workload wl = resnetConv3();
    const ArchConfig arch = accelA();
    MapSpace space(wl, arch);
    Rng rng(5);
    const Mapping m = space.randomMapping(rng);
    const CostResult a = CostModel::evaluate(wl, arch, m);
    const CostResult b = CostModel::evaluate(wl, arch, m);
    EXPECT_DOUBLE_EQ(a.edp, b.edp);
    EXPECT_DOUBLE_EQ(a.energy_uj, b.energy_uj);
}

} // namespace
} // namespace mse

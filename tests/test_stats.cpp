#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace mse {
namespace {

TEST(Stats, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({7}), 7.0);
}

TEST(Stats, GeomeanBasics)
{
    EXPECT_NEAR(geomean({1, 100}), 10.0, 1e-9);
    EXPECT_NEAR(geomean({2, 2, 2}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, GeomeanLessThanMeanForSpread)
{
    const std::vector<double> v = {1, 10, 100};
    EXPECT_LT(geomean(v), mean(v));
}

TEST(Stats, Stddev)
{
    EXPECT_DOUBLE_EQ(stddev({5, 5, 5}), 0.0);
    EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(stddev({1}), 0.0);
}

TEST(Stats, MinMax)
{
    EXPECT_DOUBLE_EQ(minOf({3, 1, 2}), 1.0);
    EXPECT_DOUBLE_EQ(maxOf({3, 1, 2}), 3.0);
}

TEST(Stats, PercentileEndpoints)
{
    const std::vector<double> v = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
}

TEST(Stats, PercentileInterpolates)
{
    const std::vector<double> v = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
    EXPECT_DOUBLE_EQ(percentile({1}, 37.0), 1.0);
}

TEST(Stats, PercentileUnsortedInput)
{
    EXPECT_DOUBLE_EQ(percentile({40, 10, 30, 20}, 50), 25.0);
}

} // namespace
} // namespace mse

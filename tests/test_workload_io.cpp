#include <gtest/gtest.h>

#include "workload/model_zoo.hpp"
#include "workload/workload_io.hpp"

namespace mse {
namespace {

class WorkloadIoRoundTripP : public ::testing::TestWithParam<int>
{
  protected:
    static Workload
    workloadFor(int i)
    {
        switch (i) {
          case 0: return resnetConv4();
          case 1: return bertKqv();
          case 2: return inceptionConv2();
          case 3:
            return makeDepthwiseConv2d("dw", 4, 32, 14, 14, 3, 3);
          default: {
            Workload wl = resnetConv3();
            wl.setDensity("Weights", 0.25);
            wl.setDensity("Inputs", 0.5);
            return wl;
          }
        }
    }
};

TEST_P(WorkloadIoRoundTripP, PreservesEverything)
{
    const Workload wl = workloadFor(GetParam());
    const auto parsed = parseWorkload(serializeWorkload(wl));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->name(), wl.name());
    EXPECT_EQ(parsed->dimNames(), wl.dimNames());
    EXPECT_EQ(parsed->bounds(), wl.bounds());
    ASSERT_EQ(parsed->numTensors(), wl.numTensors());
    for (int t = 0; t < wl.numTensors(); ++t) {
        EXPECT_EQ(parsed->tensor(t).name, wl.tensor(t).name);
        EXPECT_EQ(parsed->tensor(t).kind == TensorKind::Output,
                  wl.tensor(t).kind == TensorKind::Output);
        EXPECT_DOUBLE_EQ(parsed->tensor(t).density,
                         wl.tensor(t).density);
        EXPECT_DOUBLE_EQ(parsed->tensorVolume(t), wl.tensorVolume(t));
        for (int d = 0; d < wl.numDims(); ++d)
            EXPECT_EQ(parsed->isRelevant(t, d), wl.isRelevant(t, d));
    }
    EXPECT_EQ(parsed->reductionDims(), wl.reductionDims());
    // Second round trip is byte-identical (canonical form).
    EXPECT_EQ(serializeWorkload(*parsed), serializeWorkload(wl));
}

INSTANTIATE_TEST_SUITE_P(Zoo, WorkloadIoRoundTripP,
                         ::testing::Range(0, 5));

struct BadWorkload
{
    const char *text;
    const char *why;
};

class WorkloadIoRejectsP : public ::testing::TestWithParam<BadWorkload>
{
};

TEST_P(WorkloadIoRejectsP, MalformedInput)
{
    EXPECT_FALSE(parseWorkload(GetParam().text).has_value())
        << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, WorkloadIoRejectsP,
    ::testing::Values(
        BadWorkload{"", "empty"},
        BadWorkload{"wl2;x;dims A=1;tensor T:out:1:1*0", "bad version"},
        BadWorkload{"wl1;x;dims A=0;tensor T:out:1:1*0", "zero bound"},
        BadWorkload{"wl1;x;dims A1;tensor T:out:1:1*0", "missing ="},
        BadWorkload{"wl1;x;dims A=2;tensor T:mid:1:1*0", "bad kind"},
        BadWorkload{"wl1;x;dims A=2;tensor T:out:2.0:1*0",
                    "density > 1"},
        BadWorkload{"wl1;x;dims A=2;tensor T:out:1:1*5",
                    "dim out of range"},
        BadWorkload{"wl1;x;dims A=2;tensor T:in:1:1*0",
                    "no output tensor"},
        BadWorkload{"wl1;x;dims A=2", "no tensors"}));

} // namespace
} // namespace mse

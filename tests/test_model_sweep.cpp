/**
 * @file
 * Tests for the full-model sweep orchestrator: signature-based layer
 * dedup, two-wave warm-start scheduling with cold fallback, thread-count
 * determinism, and the CSV/JSON emitters.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/thread_pool.hpp"
#include "core/model_sweep.hpp"
#include "mapping/mapping_io.hpp"
#include "test_helpers.hpp"

namespace mse {
namespace {

/** A 5-layer toy model: conv A, duplicate of A, a similar conv B, a
 *  GEMM (incompatible dims -> cold fallback), and A again. */
std::vector<Workload>
toyModel()
{
    std::vector<Workload> layers;
    layers.push_back(makeConv2d("convA_1", 1, 8, 8, 8, 8, 3, 3));
    Workload dup = makeConv2d("convA_2", 1, 8, 8, 8, 8, 3, 3);
    layers.push_back(dup);
    layers.push_back(makeConv2d("convB", 1, 16, 8, 8, 8, 3, 3));
    layers.push_back(makeGemm("gemm", 1, 16, 16, 16));
    layers.push_back(makeConv2d("convA_3", 1, 8, 8, 8, 8, 3, 3));
    return layers;
}

ModelSweepOptions
fastOptions()
{
    ModelSweepOptions opts;
    opts.layer.budget.max_samples = 300;
    opts.seed = 7;
    return opts;
}

TEST(ModelSweep, DedupSearchesEachUniqueShapeOnce)
{
    ModelSweep sweep(test::miniNpu());
    const auto res = sweep.run("toy", toyModel(), fastOptions());

    EXPECT_EQ(res.stats.total_layers, 5u);
    EXPECT_EQ(res.stats.unique_jobs, 3u); // convA, convB, gemm
    EXPECT_EQ(res.stats.dedup_hits, 2u);
    EXPECT_EQ(res.jobs.size(), 3u);
    EXPECT_LT(res.stats.samples_spent, res.stats.samples_without_dedup);

    // The duplicates must be flagged and share the first job.
    EXPECT_FALSE(res.layers[0].deduped);
    EXPECT_TRUE(res.layers[1].deduped);
    EXPECT_TRUE(res.layers[4].deduped);
    EXPECT_EQ(res.layers[1].job, res.layers[0].job);
    EXPECT_EQ(res.layers[4].job, res.layers[0].job);
}

TEST(ModelSweep, DedupedLayersGetBitIdenticalMappings)
{
    ModelSweep sweep(test::miniNpu());
    const auto res = sweep.run("toy", toyModel(), fastOptions());

    for (const size_t dup : {1u, 4u}) {
        EXPECT_EQ(serializeMapping(res.layers[dup].best_mapping),
                  serializeMapping(res.layers[0].best_mapping));
        EXPECT_TRUE(res.layers[dup].best_mapping ==
                    res.layers[0].best_mapping);
        EXPECT_EQ(res.layers[dup].best_cost.edp,
                  res.layers[0].best_cost.edp);
    }
}

TEST(ModelSweep, WarmStartsSimilarLayersAndColdStartsForeignShapes)
{
    ModelSweep sweep(test::miniNpu());
    const auto res = sweep.run("toy", toyModel(), fastOptions());

    // convA anchors the conv cluster; convB (1 bound differs) warms
    // from it; the GEMM has no compatible root and must cold-start.
    EXPECT_FALSE(res.layers[0].warm_started);
    EXPECT_TRUE(res.layers[2].warm_started);
    EXPECT_EQ(res.layers[2].warm_source_layer, 0);
    EXPECT_DOUBLE_EQ(res.layers[2].warm_distance, 1.0);
    EXPECT_FALSE(res.layers[3].warm_started);
    EXPECT_EQ(res.layers[3].warm_source_layer, -1);
    EXPECT_EQ(res.stats.warm_jobs, 1u);
    EXPECT_EQ(res.stats.cold_jobs, 2u);

    // Every layer still gets a valid optimized mapping.
    for (const auto &rec : res.layers) {
        EXPECT_TRUE(rec.best_cost.valid) << rec.layer_name;
        EXPECT_GT(rec.samples, 0u);
    }
}

TEST(ModelSweep, WarmStartCanBeDisabled)
{
    ModelSweepOptions opts = fastOptions();
    opts.warm_start = false;
    ModelSweep sweep(test::miniNpu());
    const auto res = sweep.run("toy", toyModel(), opts);
    EXPECT_EQ(res.stats.warm_jobs, 0u);
    EXPECT_EQ(res.stats.cold_jobs, res.stats.unique_jobs);
    for (const auto &rec : res.layers)
        EXPECT_FALSE(rec.warm_started);
}

TEST(ModelSweep, ResultIsIdenticalAcrossThreadCountsAndJobOrdering)
{
    ModelSweep sweep(test::miniNpu());

    ThreadPool::setGlobalThreads(1);
    const auto serial = sweep.run("toy", toyModel(), fastOptions());

    ThreadPool::setGlobalThreads(4);
    const auto parallel = sweep.run("toy", toyModel(), fastOptions());

    ModelSweepOptions sequential_opts = fastOptions();
    sequential_opts.parallel_layers = false;
    const auto sequential =
        sweep.run("toy", toyModel(), sequential_opts);
    ThreadPool::setGlobalThreads(0);

    ASSERT_EQ(serial.layers.size(), parallel.layers.size());
    for (size_t i = 0; i < serial.layers.size(); ++i) {
        EXPECT_EQ(serial.layers[i].best_cost.edp,
                  parallel.layers[i].best_cost.edp)
            << serial.layers[i].layer_name;
        EXPECT_EQ(serializeMapping(serial.layers[i].best_mapping),
                  serializeMapping(parallel.layers[i].best_mapping));
        EXPECT_EQ(serial.layers[i].best_cost.edp,
                  sequential.layers[i].best_cost.edp);
    }
    EXPECT_EQ(serial.stats.samples_spent, parallel.stats.samples_spent);
}

TEST(ModelSweep, LayerSignatureTracksCostRelevantStateOnly)
{
    const Workload a = makeConv2d("a", 1, 8, 8, 8, 8, 3, 3);
    Workload renamed = a;
    renamed.setName("b");
    Workload denser = a;
    denser.setDensity("Weights", 0.5);

    const ArchConfig mini = test::miniNpu();
    EXPECT_EQ(layerSignature(a, mini), layerSignature(renamed, mini));
    EXPECT_NE(layerSignature(a, mini), layerSignature(denser, mini));
    EXPECT_NE(layerSignature(a, mini), layerSignature(a, accelA()));

    // Arch identity is structural, not nominal.
    ArchConfig renamed_arch = mini;
    renamed_arch.name = "other";
    EXPECT_EQ(layerSignature(a, mini), layerSignature(a, renamed_arch));
    ArchConfig bigger = mini;
    bigger.levels[0].capacity_words *= 2;
    EXPECT_NE(layerSignature(a, mini), layerSignature(a, bigger));
}

TEST(ModelSweep, WorkloadDistanceMetrics)
{
    const Workload a = makeConv2d("a", 1, 8, 8, 8, 8, 3, 3);
    const Workload b = makeConv2d("b", 1, 32, 8, 8, 8, 3, 3);
    const Workload g = makeGemm("g", 1, 8, 8, 8);

    EXPECT_DOUBLE_EQ(
        workloadDistance(SimilarityMetric::EditDistance, a, a), 0.0);
    EXPECT_DOUBLE_EQ(
        workloadDistance(SimilarityMetric::EditDistance, a, b), 1.0);
    // BoundRatio sees *how far* the K bound moved: 8 -> 32 is 2 octaves.
    EXPECT_DOUBLE_EQ(
        workloadDistance(SimilarityMetric::BoundRatio, a, b), 2.0);
    EXPECT_TRUE(std::isinf(
        workloadDistance(SimilarityMetric::EditDistance, a, g)));
    EXPECT_TRUE(
        std::isinf(workloadDistance(SimilarityMetric::BoundRatio, a, g)));
}

TEST(ModelSweep, BoundRatioMetricWarmStartsAcrossLooseEditDistance)
{
    // Every bound differs by 2x: edit distance 7 (over any reasonable
    // threshold) but only 7 octaves of total drift.
    std::vector<Workload> layers;
    layers.push_back(makeConv2d("a", 2, 8, 8, 8, 8, 6, 6));
    layers.push_back(makeConv2d("b", 4, 16, 16, 16, 16, 3, 3));

    ModelSweepOptions opts = fastOptions();
    opts.metric = SimilarityMetric::BoundRatio;
    opts.max_distance = 8.0;
    ModelSweep sweep(test::miniNpu());
    const auto res = sweep.run("pair", layers, opts);
    EXPECT_TRUE(res.layers[1].warm_started);

    opts.metric = SimilarityMetric::EditDistance;
    opts.max_distance = 4.0;
    const auto strict = sweep.run("pair", layers, opts);
    EXPECT_FALSE(strict.layers[1].warm_started);
}

TEST(ModelSweep, EmittersWriteParseableOutput)
{
    ModelSweep sweep(test::miniNpu());
    const auto res = sweep.run("toy", toyModel(), fastOptions());

    const std::string csv_path = "test_model_sweep_out.csv";
    const std::string json_path = "test_model_sweep_out.json";
    ASSERT_TRUE(writeSweepCsv(res, csv_path));
    ASSERT_TRUE(writeSweepJson(res, json_path));

    std::ifstream csv(csv_path);
    std::string line;
    size_t rows = 0;
    while (std::getline(csv, line))
        ++rows;
    EXPECT_EQ(rows, res.layers.size() + 1); // header + one per layer

    std::ifstream json(json_path);
    std::stringstream buf;
    buf << json.rdbuf();
    const std::string text = buf.str();
    EXPECT_NE(text.find("\"unique_jobs\": 3"), std::string::npos);
    EXPECT_NE(text.find("\"layers\": ["), std::string::npos);
    EXPECT_EQ(text.back(), '\n');

    std::remove(csv_path.c_str());
    std::remove(json_path.c_str());
}

TEST(ModelSweep, PreCancelledTokenSkipsEveryJob)
{
    auto token = std::make_shared<CancelToken>();
    token->requestCancel();
    ModelSweepOptions opts = fastOptions();
    opts.layer.budget.cancel = token;

    ModelSweep sweep(test::miniNpu());
    const auto res = sweep.run("toy", toyModel(), opts);
    EXPECT_EQ(res.stats.samples_spent, 0u);
    for (const auto &rec : res.layers)
        EXPECT_EQ(rec.samples, 0u) << rec.layer_name;
}

TEST(ModelSweep, MidSweepCancellationStopsBurningBudget)
{
    auto token = std::make_shared<CancelToken>();
    ModelSweepOptions opts = fastOptions();
    opts.layer.budget.max_samples = 2000000; // far beyond a fast run
    opts.layer.budget.cancel = token;
    opts.parallel_layers = false; // serial: jobs observe the token one
                                  // by one, deterministically cheap

    std::thread firing([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        token->requestCancel();
    });
    ModelSweep sweep(test::miniNpu());
    const auto res = sweep.run("toy", toyModel(), opts);
    firing.join();

    // The sweep returned long before exhausting 3 x 2M samples.
    EXPECT_LT(res.stats.samples_spent,
              res.stats.samples_without_dedup / 2);
}

} // namespace
} // namespace mse

#include <gtest/gtest.h>

#include "core/replay_buffer.hpp"
#include "core/warm_start.hpp"
#include "mappers/gamma.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

ReplayEntry
entryFor(const Workload &wl, const ArchConfig &arch, uint64_t seed)
{
    MapSpace space(wl, arch);
    Rng rng(seed);
    ReplayEntry e;
    e.workload = wl;
    e.mapping = space.randomMapping(rng);
    e.cost = CostModel::evaluate(wl, arch, e.mapping);
    return e;
}

TEST(ReplayBuffer, PushAndSize)
{
    ReplayBuffer buf(2);
    EXPECT_TRUE(buf.empty());
    const auto e = entryFor(resnetConv3(), accelB(), 1);
    buf.push(e.workload, e.mapping, e.cost);
    EXPECT_EQ(buf.size(), 1u);
}

TEST(ReplayBuffer, EvictsOldestAtCapacity)
{
    ReplayBuffer buf(2);
    const auto a = entryFor(resnetConv3(), accelB(), 1);
    const auto b = entryFor(resnetConv4(), accelB(), 2);
    const auto c = entryFor(inceptionConv2(), accelB(), 3);
    buf.push(a.workload, a.mapping, a.cost);
    buf.push(b.workload, b.mapping, b.cost);
    buf.push(c.workload, c.mapping, c.cost);
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf.entries()[0].workload.name(), "resnet_conv4");
}

TEST(ReplayBuffer, MostSimilarPicksMinimumEditDistance)
{
    ReplayBuffer buf;
    const auto far = entryFor(inceptionConv2(), accelB(), 1);
    const auto near = entryFor(resnetConv3(), accelB(), 2);
    buf.push(far.workload, far.mapping, far.cost);
    buf.push(near.workload, near.mapping, near.cost);
    // Query: conv3 with doubled K -> distance 1 to conv3, larger to
    // inception.
    const Workload query = makeConv2d("q", 16, 256, 128, 28, 28, 3, 3);
    const auto hit = buf.mostSimilar(query);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->workload.name(), "resnet_conv3");
}

TEST(ReplayBuffer, MostSimilarSkipsIncompatibleDims)
{
    ReplayBuffer buf;
    const auto gemm = entryFor(bertKqv(), accelB(), 1);
    buf.push(gemm.workload, gemm.mapping, gemm.cost);
    EXPECT_FALSE(buf.mostSimilar(resnetConv4()).has_value());
    EXPECT_FALSE(buf.mostRecent(resnetConv4()).has_value());
    EXPECT_TRUE(buf.mostSimilar(bertAttn()).has_value());
}

TEST(ReplayBuffer, MostRecentReturnsLatestCompatible)
{
    ReplayBuffer buf;
    const auto a = entryFor(resnetConv3(), accelB(), 1);
    const auto g = entryFor(bertKqv(), accelB(), 2);
    buf.push(a.workload, a.mapping, a.cost);
    buf.push(g.workload, g.mapping, g.cost);
    const auto hit = buf.mostRecent(resnetConv4());
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->workload.name(), "resnet_conv3");
}

TEST(WarmStart, NoneProducesNoSeeds)
{
    ReplayBuffer buf;
    const auto e = entryFor(resnetConv3(), accelB(), 1);
    buf.push(e.workload, e.mapping, e.cost);
    MapSpace space(resnetConv4(), accelB());
    Rng rng(1);
    EXPECT_TRUE(warmStartSeeds(space, buf, WarmStartStrategy::None, 4,
                               rng).empty());
}

TEST(WarmStart, EmptyBufferProducesNoSeeds)
{
    ReplayBuffer buf;
    MapSpace space(resnetConv4(), accelB());
    Rng rng(1);
    EXPECT_TRUE(warmStartSeeds(space, buf,
                               WarmStartStrategy::BySimilarity, 4, rng)
                    .empty());
}

TEST(WarmStart, SeedsAreLegalForTargetSpace)
{
    ReplayBuffer buf;
    const auto e = entryFor(resnetConv3(), accelB(), 5);
    buf.push(e.workload, e.mapping, e.cost);
    MapSpace space(resnetConv4(), accelB());
    Rng rng(2);
    const auto seeds = warmStartSeeds(
        space, buf, WarmStartStrategy::BySimilarity, 4, rng);
    ASSERT_EQ(seeds.size(), 4u);
    for (const auto &s : seeds) {
        EXPECT_EQ(validateMapping(space.workload(), space.arch(), s),
                  MappingError::Ok);
    }
}

TEST(WarmStart, SimilaritySeedBeatsRandomInitOnAverage)
{
    // Optimize conv3, then initialize conv4's search from it: the seed's
    // EDP should beat the average random mapping (Fig. 9's effect).
    const ArchConfig arch = accelB();
    const Workload src = resnetConv3();
    const Workload dst = resnetConv4();
    Rng rng(3);

    // A decently optimized source mapping.
    MapSpace src_space(src, arch);
    GammaMapper gamma;
    SearchBudget budget;
    budget.max_samples = 800;
    EvalFn eval = [&](const Mapping &m) {
        return CostModel::evaluate(src, arch, m);
    };
    const SearchResult opt = gamma.search(src_space, eval, budget, rng);
    ASSERT_TRUE(opt.found());

    ReplayBuffer buf;
    buf.push(src, opt.best_mapping, opt.best_cost);

    MapSpace dst_space(dst, arch);
    const auto seeds = warmStartSeeds(
        dst_space, buf, WarmStartStrategy::BySimilarity, 1, rng);
    ASSERT_EQ(seeds.size(), 1u);
    const double seed_edp =
        CostModel::evaluate(dst, arch, seeds[0]).edp;

    double random_mean_log = 0;
    const int n = 50;
    for (int i = 0; i < n; ++i) {
        const double e =
            CostModel::evaluate(dst, arch, dst_space.randomMapping(rng))
                .edp;
        random_mean_log += std::log10(e) / n;
    }
    EXPECT_LT(std::log10(seed_edp), random_mean_log);
}

TEST(WarmStartStrategyName, AllNamed)
{
    EXPECT_STREQ(warmStartStrategyName(WarmStartStrategy::None),
                 "random-init");
    EXPECT_STREQ(warmStartStrategyName(WarmStartStrategy::BySimilarity),
                 "warm-start-similarity");
    EXPECT_STREQ(warmStartStrategyName(WarmStartStrategy::ByPrevious),
                 "warm-start-previous");
}

} // namespace
} // namespace mse

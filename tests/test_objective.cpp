#include <gtest/gtest.h>

#include "core/objective.hpp"
#include "mappers/gamma.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

TEST(Objective, NamesAreDistinct)
{
    EXPECT_STREQ(objectiveName(Objective::Edp), "EDP");
    EXPECT_STREQ(objectiveName(Objective::Energy), "energy");
    EXPECT_STREQ(objectiveName(Objective::Latency), "latency");
    EXPECT_STREQ(objectiveName(Objective::Ed2p), "ED2P");
    EXPECT_STREQ(objectiveName(Objective::E2dp), "E2DP");
}

TEST(Objective, ScoresMatchDefinitions)
{
    CostResult c;
    c.valid = true;
    c.energy_uj = 3.0;
    c.latency_cycles = 5.0;
    EXPECT_DOUBLE_EQ(objectiveScore(c, Objective::Edp), 15.0);
    EXPECT_DOUBLE_EQ(objectiveScore(c, Objective::Energy), 3.0);
    EXPECT_DOUBLE_EQ(objectiveScore(c, Objective::Latency), 5.0);
    EXPECT_DOUBLE_EQ(objectiveScore(c, Objective::Ed2p), 75.0);
    EXPECT_DOUBLE_EQ(objectiveScore(c, Objective::E2dp), 45.0);
}

TEST(Objective, EdpWrapperIsPassThrough)
{
    int calls = 0;
    EvalFn base = [&](const Mapping &) {
        ++calls;
        CostResult c;
        c.valid = true;
        c.edp = 7.0;
        return c;
    };
    const EvalFn wrapped = makeObjectiveEvaluator(base, Objective::Edp);
    Mapping m(1, 1);
    EXPECT_DOUBLE_EQ(wrapped(m).edp, 7.0);
    EXPECT_EQ(calls, 1);
}

TEST(Objective, WrapperRewritesScalarButKeepsComponents)
{
    EvalFn base = [](const Mapping &) {
        CostResult c;
        c.valid = true;
        c.energy_uj = 2.0;
        c.latency_cycles = 10.0;
        c.edp = 20.0;
        return c;
    };
    const EvalFn lat = makeObjectiveEvaluator(base, Objective::Latency);
    Mapping m(1, 1);
    const CostResult c = lat(m);
    EXPECT_DOUBLE_EQ(c.edp, 10.0);       // now the latency score
    EXPECT_DOUBLE_EQ(c.energy_uj, 2.0);  // components preserved
}

TEST(Objective, InvalidCostsPassThroughUnchanged)
{
    EvalFn base = [](const Mapping &) {
        CostResult c;
        c.valid = false;
        c.edp = std::numeric_limits<double>::infinity();
        return c;
    };
    const EvalFn e = makeObjectiveEvaluator(base, Objective::Energy);
    Mapping m(1, 1);
    EXPECT_TRUE(std::isinf(e(m).edp));
}

TEST(Objective, SearchTargetsChangeTheWinner)
{
    // Optimizing latency-only should find a mapping with latency no
    // worse (and usually better) than the energy-only winner, and vice
    // versa for energy.
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    EvalFn base = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };

    auto bestUnder = [&](Objective o) {
        GammaConfig cfg;
        cfg.multi_objective = false;
        GammaMapper gamma(cfg);
        SearchBudget budget;
        budget.max_samples = 1500;
        Rng rng(5);
        const SearchResult r = gamma.search(
            space, makeObjectiveEvaluator(base, o), budget, rng);
        // Re-evaluate with the plain model to get true components.
        return CostModel::evaluate(wl, arch, r.best_mapping);
    };

    const CostResult lat_best = bestUnder(Objective::Latency);
    const CostResult eng_best = bestUnder(Objective::Energy);
    EXPECT_LE(lat_best.latency_cycles, eng_best.latency_cycles * 1.001);
    EXPECT_LE(eng_best.energy_uj, lat_best.energy_uj * 1.001);
}

} // namespace
} // namespace mse

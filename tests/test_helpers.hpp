/**
 * @file
 * Shared fixtures for the test suite: small hand-checkable workloads and
 * architectures plus common assertion helpers.
 */
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "arch/arch.hpp"
#include "common/json.hpp"
#include "mapping/map_space.hpp"
#include "workload/model_zoo.hpp"
#include "workload/workload.hpp"

namespace mse::test {

/**
 * Dotted-path lookup into a stats document, for schema tests driven
 * by the metric_names registry. A `*` segment matches any one child
 * (the object must be non-empty); the first child is descended into.
 * Returns nullptr when any segment is missing.
 */
inline const JsonValue *
findMetricPath(const JsonValue &root, const std::string &dotted)
{
    const JsonValue *node = &root;
    size_t start = 0;
    while (start <= dotted.size()) {
        const size_t dot = dotted.find('.', start);
        const std::string seg =
            dotted.substr(start, dot == std::string::npos
                                     ? std::string::npos
                                     : dot - start);
        if (seg == "*") {
            if (!node->isObject() || node->members().empty())
                return nullptr;
            node = &node->members().front().second;
        } else {
            const JsonValue *next = node->find(seg);
            if (!next)
                return nullptr;
            node = next;
        }
        if (dot == std::string::npos)
            break;
        start = dot + 1;
    }
    return node;
}

/** A 2x2x2 GEMM: small enough to verify traffic counts by hand. */
inline Workload
tinyGemm()
{
    return makeGemm("tiny_gemm", 1, 2, 2, 2);
}

/** A small CONV2D with a real sliding window. */
inline Workload
tinyConv()
{
    return makeConv2d("tiny_conv", 1, 2, 2, 4, 4, 3, 3);
}

/** Two-level hierarchy (L1 + DRAM), no spatial fanout. */
inline ArchConfig
flatArch(int64_t l1_words = 1 << 20)
{
    ArchConfig cfg;
    cfg.name = "flat";
    BufferLevel l1;
    l1.name = "L1";
    l1.capacity_words = l1_words;
    l1.bandwidth_words_per_cycle = 4.0;
    l1.read_energy_pj = 1.0;
    l1.write_energy_pj = 1.0;
    l1.fanout = 1;
    BufferLevel dram;
    dram.name = "DRAM";
    dram.capacity_words = 0;
    dram.bandwidth_words_per_cycle = 16.0;
    dram.read_energy_pj = 100.0;
    dram.write_energy_pj = 100.0;
    dram.fanout = 1;
    cfg.levels = {l1, dram};
    cfg.mac_energy_pj = 1.0;
    return cfg;
}

/** A small 3-level NPU with 4x2 spatial fanout and tight L1. */
inline ArchConfig
miniNpu()
{
    return makeNpu("mini-npu", 8 * 1024, 128, 4, 2);
}

/** Mapping with every loop at DRAM (trivial inner levels). */
inline Mapping
allAtTop(const Workload &wl, const ArchConfig &arch)
{
    Mapping m(arch.numLevels(), wl.numDims());
    for (int d = 0; d < wl.numDims(); ++d)
        m.level(arch.numLevels() - 1).temporal[d] = wl.bound(d);
    return m;
}

} // namespace mse::test

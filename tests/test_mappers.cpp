#include <gtest/gtest.h>

#include "common/permutation.hpp"
#include "mappers/gamma.hpp"
#include "mappers/order_sweep.hpp"
#include "mappers/random_pruned.hpp"
#include "mappers/standard_ga.hpp"
#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

EvalFn
denseEval(const Workload &wl, const ArchConfig &arch)
{
    return [wl, arch](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
}

TEST(RandomPruned, FindsLegalMappingWithinBudget)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    RandomPrunedMapper mapper;
    SearchBudget budget;
    budget.max_samples = 300;
    Rng rng(1);
    const SearchResult r =
        mapper.search(space, denseEval(wl, arch), budget, rng);
    ASSERT_TRUE(r.found());
    EXPECT_EQ(validateMapping(wl, arch, r.best_mapping), MappingError::Ok);
    EXPECT_LE(r.log.samples, budget.max_samples);
    EXPECT_EQ(r.log.best_edp_per_sample.size(), r.log.samples);
}

TEST(RandomPruned, BestSoFarIsMonotone)
{
    const Workload wl = resnetConv3();
    const ArchConfig arch = accelA();
    MapSpace space(wl, arch);
    RandomPrunedMapper mapper;
    SearchBudget budget;
    budget.max_samples = 500;
    Rng rng(2);
    const SearchResult r =
        mapper.search(space, denseEval(wl, arch), budget, rng);
    for (size_t i = 1; i < r.log.best_edp_per_sample.size(); ++i) {
        EXPECT_LE(r.log.best_edp_per_sample[i],
                  r.log.best_edp_per_sample[i - 1]);
    }
}

TEST(RandomPruned, DedupeSavesBudgetOnTinySpaces)
{
    const Workload wl = makeGemm("g", 1, 2, 2, 1);
    const ArchConfig arch = test::flatArch();
    MapSpace space(wl, arch);
    RandomPrunedMapper mapper(/*dedupe=*/true);
    SearchBudget budget;
    budget.max_samples = 100000;
    Rng rng(3);
    const SearchResult r =
        mapper.search(space, denseEval(wl, arch), budget, rng);
    // The tiny space has far fewer canonical mappings than the budget.
    EXPECT_LT(r.log.samples, 5000u);
    EXPECT_TRUE(r.found());
}

TEST(GammaOperators, MutateTilePreservesProducts)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(4);
    for (int i = 0; i < 100; ++i) {
        Mapping m = space.randomMapping(rng);
        GammaMapper::mutateTile(space, m, rng);
        for (int d = 0; d < wl.numDims(); ++d)
            ASSERT_EQ(m.totalFactor(d), wl.bound(d));
    }
}

TEST(GammaOperators, MutateOrderKeepsPermutation)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(5);
    Mapping m = space.randomMapping(rng);
    for (int i = 0; i < 50; ++i) {
        GammaMapper::mutateOrder(m, rng);
        for (int l = 0; l < m.numLevels(); ++l)
            ASSERT_TRUE(isPermutation(m.level(l).order));
    }
}

TEST(GammaOperators, MutateParallelRespectsFanoutAndProducts)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(6);
    for (int i = 0; i < 100; ++i) {
        Mapping m = space.randomMapping(rng);
        GammaMapper::mutateParallel(space, m, rng);
        for (int d = 0; d < wl.numDims(); ++d)
            ASSERT_EQ(m.totalFactor(d), wl.bound(d));
        for (int l = 0; l < m.numLevels(); ++l)
            ASSERT_LE(m.spatialProduct(l), arch.levels[l].fanout);
    }
}

TEST(GammaOperators, CrossoverIsFactorLegalByConstruction)
{
    const Workload wl = inceptionConv2();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        const Mapping a = space.randomMapping(rng);
        const Mapping b = space.randomMapping(rng);
        const Mapping child = GammaMapper::crossover(a, b, rng);
        for (int d = 0; d < wl.numDims(); ++d)
            ASSERT_EQ(child.totalFactor(d), wl.bound(d));
        for (int l = 0; l < child.numLevels(); ++l)
            ASSERT_TRUE(isPermutation(child.level(l).order));
    }
}

TEST(Gamma, BeatsRandomAtEqualSampleBudget)
{
    // The headline sampling-efficiency claim (Fig. 3 top): feedback
    // search finds better mappings than random within the same number
    // of cost-model queries.
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    SearchBudget budget;
    budget.max_samples = 1500;

    double gamma_wins = 0;
    for (uint64_t seed = 0; seed < 3; ++seed) {
        Rng rng_g(100 + seed), rng_r(200 + seed);
        GammaMapper gamma;
        RandomPrunedMapper random;
        const double g =
            gamma.search(space, denseEval(wl, arch), budget, rng_g)
                .best_cost.edp;
        const double r =
            random.search(space, denseEval(wl, arch), budget, rng_r)
                .best_cost.edp;
        if (g < r)
            ++gamma_wins;
    }
    EXPECT_GE(gamma_wins, 2);
}

TEST(Gamma, RespectsOperatorMasks)
{
    // With only tile mutation enabled, orders of the best mapping must
    // all come from the initial random population (we can't check that
    // directly, but the search must still run and return legal results).
    const Workload wl = resnetConv3();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    GammaConfig cfg;
    cfg.enable_order = false;
    cfg.enable_parallel = false;
    cfg.enable_crossover = false;
    GammaMapper gamma(cfg);
    SearchBudget budget;
    budget.max_samples = 400;
    Rng rng(9);
    const SearchResult r =
        gamma.search(space, denseEval(wl, arch), budget, rng);
    ASSERT_TRUE(r.found());
    EXPECT_EQ(validateMapping(wl, arch, r.best_mapping), MappingError::Ok);
}

TEST(Gamma, SeedsEnterInitialPopulation)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(10);
    // Build a strong seed by running a short search first.
    GammaMapper warmup;
    SearchBudget small;
    small.max_samples = 600;
    const SearchResult base =
        warmup.search(space, denseEval(wl, arch), small, rng);
    ASSERT_TRUE(base.found());

    // A fresh search seeded with the optimum must start at least as good
    // after its first generation.
    GammaMapper seeded;
    seeded.setInitialMappings({base.best_mapping});
    SearchBudget tiny;
    tiny.max_samples = 30;
    Rng rng2(11);
    const SearchResult r =
        seeded.search(space, denseEval(wl, arch), tiny, rng2);
    ASSERT_TRUE(r.found());
    EXPECT_LE(r.best_cost.edp, base.best_cost.edp * 1.0001);
}

TEST(StandardGa, RunsAndReturnsLegalMapping)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    StandardGaMapper ga;
    SearchBudget budget;
    budget.max_samples = 500;
    Rng rng(12);
    const SearchResult r =
        ga.search(space, denseEval(wl, arch), budget, rng);
    ASSERT_TRUE(r.found());
    EXPECT_EQ(validateMapping(wl, arch, r.best_mapping), MappingError::Ok);
}

TEST(Gamma, OutperformsStandardGa)
{
    // Fig. 6: full-fledged Gamma beats the standard GA.
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    SearchBudget budget;
    budget.max_samples = 1500;
    int wins = 0;
    for (uint64_t seed = 0; seed < 3; ++seed) {
        Rng rg(300 + seed), rs(400 + seed);
        GammaMapper gamma;
        StandardGaMapper std_ga;
        const double g =
            gamma.search(space, denseEval(wl, arch), budget, rg)
                .best_cost.edp;
        const double s =
            std_ga.search(space, denseEval(wl, arch), budget, rs)
                .best_cost.edp;
        if (g <= s)
            ++wins;
    }
    EXPECT_GE(wins, 2);
}

TEST(OrderSweep, EnumeratesAllPermutations)
{
    const Workload wl = test::tinyGemm(); // 4 dims -> 24 permutations
    const ArchConfig arch = test::flatArch();
    MapSpace space(wl, arch);
    const Mapping base = test::allAtTop(wl, arch);
    const auto pts =
        sweepUniformOrders(space, base, denseEval(wl, arch));
    EXPECT_EQ(pts.size(), 24u);
    for (const auto &p : pts)
        EXPECT_TRUE(isPermutation(p.order));
}

TEST(OrderSweep, ManyOrdersTieInEdp)
{
    // The Fig. 7 observation: d! orders collapse into a small number of
    // distinct EDP groups because only reuse-truncation points matter.
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(13);
    const Mapping base = space.randomMapping(rng);
    const auto pts =
        sweepUniformOrders(space, base, denseEval(wl, arch));
    EXPECT_EQ(pts.size(), 5040u);
    const auto groups = distinctEdps(pts, 1e-6);
    EXPECT_LT(groups.size(), 200u);
    EXPECT_GE(groups.size(), 2u);
}

TEST(DistinctEdps, MergesWithinTolerance)
{
    std::vector<OrderSweepPoint> pts;
    pts.push_back({0, {}, 1.0});
    pts.push_back({1, {}, 1.0 + 1e-12});
    pts.push_back({2, {}, 2.0});
    const auto g = distinctEdps(pts, 1e-9);
    EXPECT_EQ(g.size(), 2u);
}

} // namespace
} // namespace mse

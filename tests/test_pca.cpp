#include <gtest/gtest.h>

#include <cmath>

#include "common/pca.hpp"
#include "common/rng.hpp"

namespace mse {
namespace {

TEST(Pca, RecoversDominantDirection)
{
    // Points spread along (1,1)/sqrt(2) with small orthogonal noise.
    Rng rng(5);
    std::vector<std::vector<double>> data;
    for (int i = 0; i < 500; ++i) {
        const double t = rng.gaussian(0.0, 3.0);
        const double n = rng.gaussian(0.0, 0.1);
        data.push_back({t + n, t - n});
    }
    const auto model = fitPca(data, 2);
    ASSERT_EQ(model.components.size(), 2u);
    // First PC should be (±1/sqrt2, ±1/sqrt2).
    const double c0 = std::fabs(model.components[0][0]);
    const double c1 = std::fabs(model.components[0][1]);
    EXPECT_NEAR(c0, 1.0 / std::sqrt(2.0), 0.05);
    EXPECT_NEAR(c1, 1.0 / std::sqrt(2.0), 0.05);
    EXPECT_GT(model.explained_variance[0],
              50.0 * model.explained_variance[1]);
}

TEST(Pca, ExplainedVarianceDescending)
{
    Rng rng(9);
    std::vector<std::vector<double>> data;
    for (int i = 0; i < 200; ++i) {
        data.push_back({rng.gaussian(0, 4), rng.gaussian(0, 2),
                        rng.gaussian(0, 1)});
    }
    const auto model = fitPca(data, 3);
    ASSERT_EQ(model.explained_variance.size(), 3u);
    EXPECT_GE(model.explained_variance[0], model.explained_variance[1]);
    EXPECT_GE(model.explained_variance[1], model.explained_variance[2]);
}

TEST(Pca, ProjectionIsCentered)
{
    std::vector<std::vector<double>> data = {
        {1, 2}, {3, 4}, {5, 6}, {7, 8}};
    const auto model = fitPca(data, 1);
    // The mean point projects to the origin.
    const auto p = model.project({4, 5});
    ASSERT_EQ(p.size(), 1u);
    EXPECT_NEAR(p[0], 0.0, 1e-9);
}

TEST(Pca, ComponentsAreUnitNorm)
{
    Rng rng(13);
    std::vector<std::vector<double>> data;
    for (int i = 0; i < 100; ++i)
        data.push_back({rng.uniformReal(), rng.uniformReal(),
                        rng.uniformReal(), rng.uniformReal()});
    const auto model = fitPca(data, 3);
    for (const auto &c : model.components) {
        double norm = 0;
        for (double v : c)
            norm += v * v;
        EXPECT_NEAR(norm, 1.0, 1e-6);
    }
}

TEST(Pca, HandlesEmptyAndSingle)
{
    EXPECT_EQ(fitPca({}, 2).components.size(), 0u);
    const auto model = fitPca({{1.0, 2.0}}, 2);
    EXPECT_EQ(model.dim, 2u);
}

TEST(Pca, ClampsComponentCount)
{
    std::vector<std::vector<double>> data = {{1, 2}, {2, 1}, {0, 3}};
    const auto model = fitPca(data, 10);
    EXPECT_EQ(model.components.size(), 2u);
}

} // namespace
} // namespace mse

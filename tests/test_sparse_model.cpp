#include <gtest/gtest.h>

#include <cmath>

#include "sparse/sparse_model.hpp"
#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

Mapping
someLegalMapping(const Workload &wl, const ArchConfig &arch, uint64_t seed)
{
    MapSpace space(wl, arch);
    Rng rng(seed);
    return space.randomMapping(rng);
}

/** GEMM with K=1: no reduction loops at all. */
Workload
tinyGemmNoReduction()
{
    return makeGemm("g1", 1, 4, 1, 4);
}

TEST(ApplyDensities, SetsWeightsInputsAndDerivedOutputs)
{
    Workload wl = resnetConv4();
    applyDensities(wl, 0.5, 0.8);
    EXPECT_DOUBLE_EQ(wl.density("Weights"), 0.5);
    EXPECT_DOUBLE_EQ(wl.density("Inputs"), 0.8);
    // Large reduction (C*R*S = 2304): outputs effectively dense.
    EXPECT_NEAR(wl.density("Outputs"), 1.0, 1e-6);
}

TEST(ApplyDensities, TinyReductionKeepsOutputsSparse)
{
    Workload wl = makeGemm("g", 1, 4, 1, 4); // reduction size 1
    applyDensities(wl, 0.1, 0.1);
    EXPECT_NEAR(wl.density("Outputs"), 0.01, 1e-9);
}

TEST(ReductionInnerness, FixedOrdersHitExtremes)
{
    const Workload wl = bertKqv();
    const ArchConfig arch = accelB();
    Mapping m = someLegalMapping(wl, arch, 3);
    fixOrderInnerProduct(wl, m);
    EXPECT_GT(reductionInnerness(wl, m), 0.6);
    fixOrderOuterProduct(wl, m);
    EXPECT_LT(reductionInnerness(wl, m), 0.4);
}

TEST(ReductionInnerness, NoReductionLoopsIsNeutral)
{
    const Workload wl = tinyGemmNoReduction();
    const ArchConfig arch = test::flatArch();
    Mapping m(arch.numLevels(), wl.numDims());
    for (int d = 0; d < wl.numDims(); ++d)
        m.level(1).temporal[d] = wl.bound(d);
    EXPECT_DOUBLE_EQ(reductionInnerness(wl, m), 0.5);
}

TEST(FixOrder, PreservesPermutationValidity)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    Mapping m = someLegalMapping(wl, arch, 11);
    fixOrderInnerProduct(wl, m);
    EXPECT_EQ(validateMapping(wl, arch, m), MappingError::Ok);
    fixOrderOuterProduct(wl, m);
    EXPECT_EQ(validateMapping(wl, arch, m), MappingError::Ok);
}

TEST(SparseCostModel, DenseWorkloadMatchesCompressionFreeTraffic)
{
    // With density 1.0 the traffic-side of the sparse model reduces to
    // the dense counts (compression scale = min(1, 1 * 1.06) = 1).
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    const Mapping m = someLegalMapping(wl, arch, 17);
    SparseCostModel sparse;
    const CostResult s = sparse.evaluate(wl, arch, m);
    const CostResult d = CostModel::evaluate(wl, arch, m);
    ASSERT_TRUE(s.valid && d.valid);
    // Energy differs only via compute-side overheads (intersection),
    // so it stays within a modest factor of the dense result.
    EXPECT_GT(s.energy_uj, 0.5 * d.energy_uj);
    EXPECT_LT(s.energy_uj, 3.0 * d.energy_uj);
}

TEST(SparseCostModel, EdpImprovesMonotonicallyWithSparsity)
{
    const ArchConfig arch = accelB();
    const Mapping m = someLegalMapping(resnetConv4(), arch, 23);
    double prev = std::numeric_limits<double>::infinity();
    for (double density : {1.0, 0.5, 0.1, 0.01}) {
        Workload wl = resnetConv4();
        applyDensities(wl, density, 1.0);
        SparseCostModel sparse;
        const CostResult r = sparse.evaluate(wl, arch, m);
        ASSERT_TRUE(r.valid) << "density " << density;
        EXPECT_LT(r.edp, prev) << "density " << density;
        prev = r.edp;
    }
}

TEST(SparseCostModel, SkippingBeatsGatingOnLatency)
{
    Workload wl = resnetConv4();
    applyDensities(wl, 0.1, 1.0);
    const ArchConfig arch = accelB();
    const Mapping m = someLegalMapping(wl, arch, 29);

    SparseAcceleratorFeatures skip;
    skip.skipping = true;
    SparseAcceleratorFeatures gate;
    gate.skipping = false;
    gate.gating = true;

    const CostResult rs = SparseCostModel(skip).evaluate(wl, arch, m);
    const CostResult rg = SparseCostModel(gate).evaluate(wl, arch, m);
    ASSERT_TRUE(rs.valid && rg.valid);
    EXPECT_LE(rs.compute_cycles, rg.compute_cycles);
    // Gating still saves energy versus no SAF at all.
    SparseAcceleratorFeatures none;
    none.skipping = false;
    none.gating = false;
    const CostResult rn = SparseCostModel(none).evaluate(wl, arch, m);
    EXPECT_LT(rg.energy_uj, rn.energy_uj);
}

TEST(SparseCostModel, InnerOuterCrossoverDirection)
{
    // The Sec. 4.5.3 crossover, tested as a direction over many random
    // tilings: the inner/outer EDP ratio must grow as density drops —
    // inner-product mappings are ahead (geomean) when dense and lose
    // that edge at high sparsity.
    const ArchConfig arch = accelB();
    auto geomeanEdp = [&](double density, bool inner) {
        Workload wl = bertAttn();
        applyDensities(wl, density, density);
        MapSpace space(wl, arch);
        Rng rng(41);
        double log_sum = 0.0;
        const int n = 12;
        for (int i = 0; i < n; ++i) {
            Mapping m = space.randomMapping(rng);
            if (inner)
                fixOrderInnerProduct(wl, m);
            else
                fixOrderOuterProduct(wl, m);
            space.repair(m);
            const CostResult r = SparseCostModel().evaluate(wl, arch, m);
            EXPECT_TRUE(r.valid);
            log_sum += std::log10(r.edp) / n;
        }
        return std::pow(10.0, log_sum);
    };
    const double ratio_dense = geomeanEdp(1.0, true) / geomeanEdp(1.0, false);
    const double ratio_sparse =
        geomeanEdp(0.01, true) / geomeanEdp(0.01, false);
    EXPECT_LT(ratio_dense, 1.0);         // inner ahead when dense
    EXPECT_GT(ratio_sparse, ratio_dense); // outer catches up when sparse
}

TEST(SparseCostModel, TrafficShrinksWithDensity)
{
    const ArchConfig arch = accelB();
    const Mapping m = someLegalMapping(resnetConv4(), arch, 53);
    Workload dense = resnetConv4();
    Workload sparse_wl = resnetConv4();
    applyDensities(sparse_wl, 0.1, 1.0);
    SparseCostModel model;
    const CostResult rd = model.evaluate(dense, arch, m);
    const CostResult rs = model.evaluate(sparse_wl, arch, m);
    ASSERT_TRUE(rd.valid && rs.valid);
    EXPECT_LT(rs.energy_uj, rd.energy_uj);
    EXPECT_LE(rs.latency_cycles, rd.latency_cycles);
}

TEST(SparseCostModel, InvalidMappingRejected)
{
    Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    Mapping m(arch.numLevels(), wl.numDims()); // bad products
    const CostResult r = SparseCostModel().evaluate(wl, arch, m);
    EXPECT_FALSE(r.valid);
    EXPECT_TRUE(std::isinf(r.edp));
}

} // namespace
} // namespace mse

/**
 * @file
 * ShardRing properties: deterministic placement (the client/server
 * agreement contract), bounded key movement on topology change (the
 * consistent-hashing property), replica-set shape, and the address
 * parsing helpers the cluster tools share.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/shard_ring.hpp"
#include "common/math_util.hpp"

namespace mse {
namespace {

std::vector<std::string>
nodes(size_t n)
{
    std::vector<std::string> out;
    for (size_t i = 0; i < n; ++i)
        out.push_back("127.0.0.1:" + std::to_string(21000 + i));
    return out;
}

/** Synthetic store-key corpus (shape mirrors keyOf: hex|hex|obj|model). */
std::vector<std::string>
keys(size_t n)
{
    std::vector<std::string> out;
    for (size_t i = 0; i < n; ++i)
        out.push_back(fnv1a64Hex("wl" + std::to_string(i)) +
                      "|54c142bdce4b407c|EDP|dense");
    return out;
}

TEST(ShardRing, PlacementIsAPureFunctionOfTheNodeSet)
{
    // Same node set, any listing order, separately constructed rings:
    // identical owners for every key. This is the property that lets
    // clients route without asking the daemons.
    const auto ns = nodes(5);
    std::vector<std::string> shuffled = ns;
    std::reverse(shuffled.begin(), shuffled.end());
    std::vector<std::string> with_dup = ns;
    with_dup.push_back(ns[2]);

    const ShardRing a(ns), b(shuffled), c(with_dup);
    EXPECT_EQ(a.numNodes(), 5u);
    EXPECT_EQ(c.numNodes(), 5u);
    for (const auto &k : keys(200)) {
        EXPECT_EQ(a.ownerOf(k), b.ownerOf(k)) << k;
        EXPECT_EQ(a.ownerOf(k), c.ownerOf(k)) << k;
        EXPECT_EQ(a.replicasOf(k, 3), b.replicasOf(k, 3)) << k;
    }
}

TEST(ShardRing, EveryNodeOwnsASensibleShare)
{
    // 64 vnodes/node keeps per-node load within a loose band of 1/N —
    // no node starved, none doubly loaded (3x slack on 1000 keys).
    const size_t n = 4;
    const ShardRing ring(nodes(n));
    const auto ks = keys(1000);
    std::vector<size_t> count(n, 0);
    for (const auto &k : ks) {
        const auto &owner = ring.ownerOf(k);
        const auto it = std::find(ring.nodes().begin(),
                                  ring.nodes().end(), owner);
        ASSERT_NE(it, ring.nodes().end());
        ++count[static_cast<size_t>(it - ring.nodes().begin())];
    }
    const double fair = static_cast<double>(ks.size()) / n;
    for (size_t i = 0; i < n; ++i) {
        EXPECT_GT(count[i], fair / 3.0) << ring.nodes()[i];
        EXPECT_LT(count[i], fair * 3.0) << ring.nodes()[i];
    }
}

TEST(ShardRing, AddingANodeMovesOnlyItsShare)
{
    // The consistent-hashing contract: growing N -> N+1 remaps ~1/(N+1)
    // of keys (all onto the new node); every moved key must land on it.
    const auto ns = nodes(4);
    ShardRing before(ns);
    ShardRing after(ns);
    const std::string newcomer = "127.0.0.1:29999";
    after.addNode(newcomer);

    const auto ks = keys(2000);
    size_t moved = 0;
    for (const auto &k : ks) {
        if (after.ownerOf(k) != before.ownerOf(k)) {
            ++moved;
            EXPECT_EQ(after.ownerOf(k), newcomer) << k;
        }
    }
    // Expected 1/5 of keys; assert <= ~2/N with slack (and nonzero).
    EXPECT_GT(moved, 0u);
    EXPECT_LE(moved, ks.size() * 2 / 5);
}

TEST(ShardRing, RemovingANodeOnlyReassignsItsKeys)
{
    const auto ns = nodes(5);
    ShardRing before(ns);
    ShardRing after(ns);
    ASSERT_TRUE(after.removeNode(ns[2]));
    EXPECT_FALSE(after.removeNode(ns[2])); // already gone
    EXPECT_FALSE(after.contains(ns[2]));

    const auto ks = keys(2000);
    for (const auto &k : ks) {
        if (before.ownerOf(k) != ns[2]) {
            // Keys the dead node did not own must not move at all.
            EXPECT_EQ(after.ownerOf(k), before.ownerOf(k)) << k;
        } else {
            EXPECT_NE(after.ownerOf(k), ns[2]) << k;
        }
    }
}

TEST(ShardRing, ReplicaSetsAreDistinctOwnerFirstAndClamped)
{
    const ShardRing ring(nodes(3));
    for (const auto &k : keys(100)) {
        const auto reps = ring.replicasOf(k, 2);
        ASSERT_EQ(reps.size(), 2u);
        EXPECT_EQ(reps[0], ring.ownerOf(k));
        EXPECT_NE(reps[0], reps[1]);
        EXPECT_TRUE(ring.isReplica(k, reps[1], 2));
        EXPECT_FALSE(ring.isReplica(k, reps[1], 1));
        // Asking for more copies than nodes yields all nodes.
        EXPECT_EQ(ring.replicasOf(k, 7).size(), 3u);
    }
}

TEST(ShardRing, EmptyAndSingleNodeEdges)
{
    const ShardRing empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.ownerOf("anything"), "");
    EXPECT_TRUE(empty.replicasOf("anything", 2).empty());

    const ShardRing one(nodes(1));
    for (const auto &k : keys(20)) {
        EXPECT_EQ(one.ownerOf(k), nodes(1)[0]);
        EXPECT_EQ(one.replicasOf(k, 3).size(), 1u);
    }
}

TEST(ClusterConfig, RingAgreesBetweenClientAndServerViews)
{
    // The daemon builds its config from --self + --peers; the client
    // from --cluster. Different orderings, same ring.
    ClusterConfig server_view;
    server_view.self = "127.0.0.1:21002";
    server_view.nodes = {"127.0.0.1:21002", "127.0.0.1:21000",
                         "127.0.0.1:21001"};
    ClusterConfig client_view;
    client_view.nodes =
        splitNodeList("127.0.0.1:21000, 127.0.0.1:21001,127.0.0.1:21002");
    const ShardRing s = server_view.ring();
    const ShardRing c = client_view.ring();
    for (const auto &k : keys(100))
        EXPECT_EQ(s.ownerOf(k), c.ownerOf(k)) << k;
}

TEST(ClusterConfig, ReplicationClampsToNodeCount)
{
    ClusterConfig cfg;
    cfg.nodes = {"a:1", "b:1"};
    cfg.replication = 5;
    EXPECT_EQ(cfg.replicationClamped(), 2u);
    cfg.replication = 0;
    EXPECT_EQ(cfg.replicationClamped(), 1u);
    cfg.nodes.clear();
    EXPECT_EQ(cfg.replicationClamped(), 0u);
}

TEST(ClusterConfig, SplitNodeListAndHostPort)
{
    const auto ns = splitNodeList(" a:1 ,, b:2,\tc:3 ,");
    ASSERT_EQ(ns.size(), 3u);
    EXPECT_EQ(ns[0], "a:1");
    EXPECT_EQ(ns[1], "b:2");
    EXPECT_EQ(ns[2], "c:3");
    EXPECT_TRUE(splitNodeList("").empty());

    std::string host;
    uint16_t port = 0;
    EXPECT_TRUE(splitHostPort("127.0.0.1:8080", &host, &port));
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 8080);
    EXPECT_FALSE(splitHostPort("nohost", &host, &port));
    EXPECT_FALSE(splitHostPort(":80", &host, &port));
    EXPECT_FALSE(splitHostPort("h:", &host, &port));
    EXPECT_FALSE(splitHostPort("h:0", &host, &port));
    EXPECT_FALSE(splitHostPort("h:65536", &host, &port));
    EXPECT_FALSE(splitHostPort("h:12ab", &host, &port));
}

} // namespace
} // namespace mse

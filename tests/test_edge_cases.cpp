/**
 * @file
 * Edge-case hardening: degenerate hierarchies, unit bounds, extreme
 * budgets, and other corners a fuzzer would find first.
 */
#include <gtest/gtest.h>

#include "mappers/gamma.hpp"
#include "mappers/random_pruned.hpp"
#include "model/cost_model.hpp"
#include "sparse/sparse_model.hpp"
#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

/** A machine that is just DRAM: everything streams. */
ArchConfig
dramOnly()
{
    ArchConfig cfg;
    cfg.name = "dram-only";
    BufferLevel dram;
    dram.name = "DRAM";
    dram.capacity_words = 0;
    dram.bandwidth_words_per_cycle = 8.0;
    dram.read_energy_pj = 100.0;
    dram.write_energy_pj = 100.0;
    dram.fanout = 1;
    cfg.levels = {dram};
    return cfg;
}

TEST(EdgeCases, SingleLevelMachineEvaluates)
{
    const Workload wl = test::tinyGemm();
    const ArchConfig arch = dramOnly();
    Mapping m(1, wl.numDims());
    for (int d = 0; d < wl.numDims(); ++d)
        m.level(0).temporal[d] = wl.bound(d);
    ASSERT_EQ(validateMapping(wl, arch, m), MappingError::Ok);
    const CostResult r = CostModel::evaluate(wl, arch, m);
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.energy_uj, 0.0);
    EXPECT_GE(r.latency_cycles, r.compute_cycles);
}

TEST(EdgeCases, SingleLevelSearchWorks)
{
    const Workload wl = test::tinyGemm();
    const ArchConfig arch = dramOnly();
    MapSpace space(wl, arch);
    EvalFn eval = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    GammaMapper gamma;
    SearchBudget budget;
    budget.max_samples = 200;
    Rng rng(1);
    const SearchResult r = gamma.search(space, eval, budget, rng);
    ASSERT_TRUE(r.found());
}

TEST(EdgeCases, AllUnitBoundsWorkload)
{
    // A 1x1x...x1 problem: exactly one mapping shape, EDP finite.
    const Workload wl = makeGemm("unit", 1, 1, 1, 1);
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(2);
    const Mapping m = space.randomMapping(rng);
    ASSERT_EQ(validateMapping(wl, arch, m), MappingError::Ok);
    const CostResult r = CostModel::evaluate(wl, arch, m);
    ASSERT_TRUE(r.valid);
    EXPECT_DOUBLE_EQ(r.macs, 1.0);
}

TEST(EdgeCases, PrimeBoundsLimitFactorization)
{
    // Prime bounds can only split as 1s and the prime itself.
    const Workload wl = makeGemm("prime", 1, 7, 13, 17);
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        const Mapping m = space.randomMapping(rng);
        ASSERT_EQ(validateMapping(wl, arch, m), MappingError::Ok);
    }
}

TEST(EdgeCases, ZeroSampleBudgetReturnsNotFound)
{
    const Workload wl = resnetConv3();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    EvalFn eval = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    RandomPrunedMapper mapper;
    SearchBudget budget;
    budget.max_samples = 0;
    Rng rng(4);
    const SearchResult r = mapper.search(space, eval, budget, rng);
    EXPECT_FALSE(r.found());
    EXPECT_EQ(r.log.samples, 0u);
}

TEST(EdgeCases, OneSampleBudget)
{
    const Workload wl = resnetConv3();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    EvalFn eval = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    GammaMapper gamma;
    SearchBudget budget;
    budget.max_samples = 1;
    Rng rng(5);
    const SearchResult r = gamma.search(space, eval, budget, rng);
    EXPECT_EQ(r.log.samples, 1u);
    EXPECT_TRUE(r.found());
}

TEST(EdgeCases, TinyCapacityStillRepairable)
{
    // L1 of 8 words: the repair loop must still terminate with a legal
    // mapping (minimal tiles are 3 words for 3 tensors).
    const Workload wl = resnetConv4();
    const ArchConfig arch = makeNpu("tiny-l1", 64 * 1024, 16, 256, 4);
    MapSpace space(wl, arch);
    Rng rng(6);
    for (int i = 0; i < 50; ++i) {
        const Mapping m = space.randomMapping(rng);
        ASSERT_EQ(validateMapping(wl, arch, m), MappingError::Ok);
    }
}

TEST(EdgeCases, HugeBoundsDoNotOverflow)
{
    // Totals near 2^40 MACs: doubles must carry the magnitudes.
    const Workload wl = makeGemm("huge", 64, 4096, 4096, 4096);
    const ArchConfig arch = accelA();
    MapSpace space(wl, arch);
    Rng rng(7);
    const Mapping m = space.randomMapping(rng);
    const CostResult r = CostModel::evaluate(wl, arch, m);
    ASSERT_TRUE(r.valid);
    EXPECT_TRUE(std::isfinite(r.edp));
    EXPECT_GT(r.macs, 4e12);
}

TEST(EdgeCases, FanoutOneEverywhereDisablesSpatial)
{
    const Workload wl = test::tinyConv();
    const ArchConfig arch = test::flatArch();
    MapSpace space(wl, arch);
    Rng rng(8);
    for (int i = 0; i < 30; ++i) {
        const Mapping m = space.randomMapping(rng);
        for (int l = 0; l < m.numLevels(); ++l)
            ASSERT_EQ(m.spatialProduct(l), 1);
    }
}

TEST(EdgeCases, RepeatedRepairIsIdempotent)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(9);
    Mapping m = space.randomMapping(rng);
    const std::string once = [&] {
        Mapping c = m;
        space.repair(c);
        return c.canonicalKey();
    }();
    Mapping twice = m;
    space.repair(twice);
    space.repair(twice);
    EXPECT_EQ(twice.canonicalKey(), once);
}

TEST(EdgeCases, SparseModelOnDegenerateDensity)
{
    Workload wl = resnetConv3();
    applyDensities(wl, 1e-4, 1e-4); // nearly empty tensors
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(10);
    const Mapping m = space.randomMapping(rng);
    const CostResult r = SparseCostModel().evaluate(wl, arch, m);
    ASSERT_TRUE(r.valid);
    EXPECT_TRUE(std::isfinite(r.edp));
    EXPECT_GT(r.edp, 0.0);
}

} // namespace
} // namespace mse

/**
 * @file
 * HealthMonitor: the hysteresis state machine (pure replay), live
 * failure detection and recovery against real loopback daemons, the
 * cluster.probe fault site with per-peer MSE_FAULT_PEERS filtering,
 * and the health stats schema pinned to the metric_names registry.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/health.hpp"
#include "common/cluster_faults.hpp"
#include "common/fault_injection.hpp"
#include "common/metric_names.hpp"
#include "service/server.hpp"
#include "test_helpers.hpp"

namespace mse {
namespace {

/** Arms the global injector for one test, disarming on scope exit. */
class GlobalFaultGuard
{
  public:
    explicit GlobalFaultGuard(const std::string &config)
    {
        std::string err;
        EXPECT_TRUE(FaultInjector::global().configure(config, &err))
            << err;
    }
    ~GlobalFaultGuard()
    {
        FaultInjector::global().clear();
        // Drop any per-peer filter a test installed so later tests
        // (and the env-lazy-load path) start from a clean slate.
        clusterFaultPeersConfigure("");
    }
};

bool
waitUntil(const std::function<bool()> &pred, int timeout_ms = 15000)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
}

/** One loopback daemon the monitor can probe. */
struct LiveNode
{
    std::unique_ptr<MseService> service;
    std::unique_ptr<ServiceServer> server;
    std::string addr;

    explicit LiveNode(uint16_t port = 0)
    {
        ServiceConfig scfg;
        // Several services in one process need executors >= 2 (the
        // ThreadPool one-top-level-caller contract).
        scfg.executors = 2;
        service = std::make_unique<MseService>(scfg);
        ServerConfig srv;
        srv.port = port;
        server = std::make_unique<ServiceServer>(*service, srv);
        std::string err;
        EXPECT_TRUE(server->start(&err)) << err;
        addr = "127.0.0.1:" + std::to_string(server->port());
    }
};

HealthConfig
fastProbes(int down_after = 2)
{
    HealthConfig cfg;
    cfg.probe_interval_ms = 20;
    cfg.probe_timeout_ms = 1000;
    cfg.down_after = down_after;
    return cfg;
}

// ---------------------------------------------- pure state machine

TEST(HealthStateMachine, ReplaysHysteresisTransitionTable)
{
    using H = PeerHealth;
    const int k = 3; // down_after

    // Up holds through k-1 consecutive failures, breaks on the k-th.
    EXPECT_EQ(HealthMonitor::nextState(H::Up, true, 0, k), H::Up);
    EXPECT_EQ(HealthMonitor::nextState(H::Up, false, 1, k), H::Up);
    EXPECT_EQ(HealthMonitor::nextState(H::Up, false, 2, k), H::Up);
    EXPECT_EQ(HealthMonitor::nextState(H::Up, false, 3, k), H::Down);

    // Down only climbs out through Suspect, never straight to Up.
    EXPECT_EQ(HealthMonitor::nextState(H::Down, false, 9, k), H::Down);
    EXPECT_EQ(HealthMonitor::nextState(H::Down, true, 0, k),
              H::Suspect);

    // Suspect: a second success promotes, one failure demotes.
    EXPECT_EQ(HealthMonitor::nextState(H::Suspect, true, 0, k), H::Up);
    EXPECT_EQ(HealthMonitor::nextState(H::Suspect, false, 1, k),
              H::Down);

    // Deterministic replay of a full flap cycle, driving the counter
    // exactly as probeLoop does: ok ok fail fail fail ok fail ok ok.
    const bool probes[] = {true,  true, false, false, false,
                           true,  false, true,  true};
    const H expect[] = {H::Up,      H::Up,   H::Up,
                        H::Up,      H::Down, H::Suspect,
                        H::Down,    H::Suspect, H::Up};
    H state = H::Up;
    int failures = 0;
    for (size_t i = 0; i < std::size(probes); ++i) {
        failures = probes[i] ? 0 : failures + 1;
        state = HealthMonitor::nextState(state, probes[i], failures, k);
        EXPECT_EQ(state, expect[i]) << "step " << i;
    }
}

TEST(HealthStateMachine, StateNamesAreStableWireStrings)
{
    EXPECT_STREQ(peerHealthName(PeerHealth::Up), "up");
    EXPECT_STREQ(peerHealthName(PeerHealth::Suspect), "suspect");
    EXPECT_STREQ(peerHealthName(PeerHealth::Down), "down");
}

// ------------------------------------------------- live monitoring

TEST(HealthMonitorLive, DetectsDeathAndRecoversThroughSuspect)
{
    LiveNode peer;
    const uint16_t port = peer.server->port();

    ClusterConfig cluster;
    cluster.self = "127.0.0.1:1";
    cluster.nodes = {cluster.self, peer.addr};
    cluster.replication = 2;
    HealthMonitor monitor(cluster, fastProbes(2));

    std::mutex mu;
    std::vector<std::pair<PeerHealth, PeerHealth>> transitions;
    monitor.setOnTransition([&](const std::string &addr,
                                PeerHealth from, PeerHealth to) {
        EXPECT_EQ(addr, peer.addr);
        std::lock_guard<std::mutex> lk(mu);
        transitions.emplace_back(from, to);
    });
    monitor.start();
    monitor.start(); // idempotent

    // Healthy peer: stays Up while probes succeed.
    EXPECT_TRUE(waitUntil([&] {
        return monitor.statsJson().getInt("probes_sent", 0) >= 2;
    }));
    EXPECT_EQ(monitor.healthOf(peer.addr), PeerHealth::Up);

    // Unknown addresses are Up: absent peers must not look dead.
    EXPECT_EQ(monitor.healthOf("10.9.9.9:9"), PeerHealth::Up);

    // Kill the peer: down_after consecutive misses mark it Down.
    peer.server->stop();
    EXPECT_TRUE(waitUntil(
        [&] { return monitor.healthOf(peer.addr) == PeerHealth::Down; }));

    // Revive it on the same port: recovery climbs Down -> Suspect ->
    // Up (two consecutive successes), never straight to Up.
    LiveNode revived(port);
    ASSERT_EQ(revived.addr, peer.addr);
    EXPECT_TRUE(waitUntil(
        [&] { return monitor.healthOf(peer.addr) == PeerHealth::Up; }));
    monitor.stop();
    monitor.stop(); // idempotent

    std::lock_guard<std::mutex> lk(mu);
    ASSERT_GE(transitions.size(), 3u);
    EXPECT_EQ(transitions[0].first, PeerHealth::Up);
    EXPECT_EQ(transitions[0].second, PeerHealth::Down);
    // The climb out of Down passes through Suspect exactly once per
    // successful recovery.
    bool saw_suspect = false, saw_up = false;
    for (size_t i = 1; i < transitions.size(); ++i) {
        if (transitions[i].second == PeerHealth::Suspect)
            saw_suspect = true;
        if (transitions[i].second == PeerHealth::Up) {
            EXPECT_EQ(transitions[i].first, PeerHealth::Suspect);
            saw_up = true;
        }
    }
    EXPECT_TRUE(saw_suspect);
    EXPECT_TRUE(saw_up);
}

TEST(HealthMonitorLive, ProbeFaultSiteSeversExactlyTheFilteredPeer)
{
    // Two healthy daemons; MSE_FAULT_PEERS-style filtering arms the
    // cluster.probe site against only one of them. The partitioned
    // peer must go Down while the other never leaves Up — the
    // asymmetric-partition primitive the chaos harness builds on.
    LiveNode a, b;
    ClusterConfig cluster;
    cluster.self = "127.0.0.1:1";
    cluster.nodes = {cluster.self, a.addr, b.addr};
    cluster.replication = 2;
    HealthMonitor monitor(cluster, fastProbes(2));

    clusterFaultPeersConfigure(a.addr);
    GlobalFaultGuard guard("cluster.probe:every:1:EIO");
    monitor.start();

    EXPECT_TRUE(waitUntil(
        [&] { return monitor.healthOf(a.addr) == PeerHealth::Down; }));
    EXPECT_EQ(monitor.healthOf(b.addr), PeerHealth::Up);
    const JsonValue stats = monitor.statsJson();
    EXPECT_GE(stats.getInt("probes_failed", 0), 2);
    EXPECT_EQ(stats.getInt("peers_down", -1), 1);
    EXPECT_EQ(stats.getInt("peers_up", -1), 1);
    monitor.stop();
}

// ------------------------------------------------------ stats schema

TEST(HealthMonitorStats, SchemaCarriesEveryDeclaredHealthKey)
{
    // Pins the monitor's stats block to the metric_names registry:
    // every declared health.* path (mounted under "health" by
    // mse_serve's augment_stats hook) must be present, including one
    // peers.* child per peer.
    ClusterConfig cluster;
    cluster.self = "127.0.0.1:1";
    cluster.nodes = {cluster.self, "127.0.0.1:9"};
    cluster.replication = 2;
    HealthMonitor monitor(cluster);
    const JsonValue stats = monitor.statsJson();
    const std::string prefix = "health.";
    for (const char *key : metric_names::kConditionalKeys) {
        const std::string k = key;
        if (k.rfind(prefix, 0) != 0)
            continue;
        EXPECT_NE(test::findMetricPath(stats, k.substr(prefix.size())),
                  nullptr)
            << key;
    }
    const JsonValue *peers = stats.find("peers");
    ASSERT_NE(peers, nullptr);
    const JsonValue *pp = peers->find("127.0.0.1:9");
    ASSERT_NE(pp, nullptr);
    EXPECT_EQ(pp->getString("state", ""), "up");
}

} // namespace
} // namespace mse

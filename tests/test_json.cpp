/**
 * @file
 * The common JSON layer: building, dumping, escaping, parsing, and the
 * hostile-input defenses the wire protocol depends on.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/json.hpp"

namespace mse {
namespace {

TEST(Json, BuildAndDumpCompact)
{
    JsonValue j = JsonValue::object();
    j["name"] = "gemm";
    j["n"] = 42;
    j["pi"] = 3.5;
    j["ok"] = true;
    j["none"] = JsonValue();
    JsonValue &arr = j["xs"];
    arr = JsonValue::array();
    arr.push(1);
    arr.push(2);
    EXPECT_EQ(j.dump(),
              "{\"name\":\"gemm\",\"n\":42,\"pi\":3.5,\"ok\":true,"
              "\"none\":null,\"xs\":[1,2]}");
}

TEST(Json, InsertionOrderPreserved)
{
    JsonValue j = JsonValue::object();
    j["z"] = 1;
    j["a"] = 2;
    j["m"] = 3;
    const auto &m = j.members();
    ASSERT_EQ(m.size(), 3u);
    EXPECT_EQ(m[0].first, "z");
    EXPECT_EQ(m[1].first, "a");
    EXPECT_EQ(m[2].first, "m");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(jsonEscaped("a\"b\\c\n\t\x01"),
              "a\\\"b\\\\c\\n\\t\\u0001");
    JsonValue j = JsonValue::object();
    j["k\"ey"] = "v\\al\nue";
    const auto parsed = parseJson(j.dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->getString("k\"ey", ""), "v\\al\nue");
}

TEST(Json, NumberRoundTrip)
{
    for (const double v :
         {0.0, -1.0, 42.0, 1e-300, 1e300, 1.0 / 3.0, 6.02214076e23,
          302419674.8642532, 9007199254740992.0}) {
        JsonValue j = JsonValue::object();
        j["v"] = v;
        const auto parsed = parseJson(j.dump());
        ASSERT_TRUE(parsed.has_value()) << j.dump();
        EXPECT_EQ(parsed->getDouble("v", -1.0), v) << j.dump();
    }
}

TEST(Json, IntegersPrintWithoutDecimalPoint)
{
    JsonValue j = JsonValue::object();
    j["v"] = static_cast<uint64_t>(524288);
    EXPECT_EQ(j.dump(), "{\"v\":524288}");
}

TEST(Json, NonFiniteBecomesNull)
{
    JsonValue j = JsonValue::object();
    j["inf"] = std::numeric_limits<double>::infinity();
    j["nan"] = std::nan("");
    EXPECT_EQ(j.dump(), "{\"inf\":null,\"nan\":null}");
}

TEST(Json, ParseBasics)
{
    const auto j = parseJson(
        " { \"a\" : [ 1 , -2.5e1 , \"x\" , true , null ] } ");
    ASSERT_TRUE(j.has_value());
    const JsonValue *a = j->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items().size(), 5u);
    EXPECT_EQ(a->items()[0].asDouble(), 1.0);
    EXPECT_EQ(a->items()[1].asDouble(), -25.0);
    EXPECT_EQ(a->items()[2].asString(""), "x");
    EXPECT_TRUE(a->items()[3].asBool(false));
    EXPECT_TRUE(a->items()[4].isNull());
}

TEST(Json, ParseUnicodeEscapes)
{
    const auto j = parseJson("{\"s\":\"\\u0041\\u00e9\\ud83d\\ude00\"}");
    ASSERT_TRUE(j.has_value());
    EXPECT_EQ(j->getString("s", ""), "A\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(Json, MalformedInputsRejectedWithError)
{
    for (const char *bad :
         {"", "{", "}", "[1,", "{\"a\":}", "{\"a\" 1}", "tru",
          "\"unterminated", "{\"a\":1} trailing", "1e", "--2",
          "[1 2]", "{\"a\":1,}", "nulll", "\"bad \\x escape\"",
          "\"lone surrogate \\ud800\"", "\"raw\tcontrol\""}) {
        std::string err;
        EXPECT_FALSE(parseJson(bad, &err).has_value()) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(Json, DepthLimitStopsNestingBombs)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += '[';
    for (int i = 0; i < 100; ++i)
        deep += ']';
    EXPECT_FALSE(parseJson(deep).has_value());

    std::string ok = "[[[[[[[[[[1]]]]]]]]]]";
    EXPECT_TRUE(parseJson(ok).has_value());
}

TEST(Json, TypedGettersTolerateWrongTypes)
{
    const auto j = parseJson("{\"s\":\"x\",\"n\":3}");
    ASSERT_TRUE(j.has_value());
    EXPECT_EQ(j->getDouble("s", 7.0), 7.0);
    EXPECT_EQ(j->getString("n", "d"), "d");
    EXPECT_EQ(j->getInt("missing", 9), 9);
    // Null-tolerant chaining: find on a non-object is nullptr.
    EXPECT_EQ(j->find("s")->find("inner"), nullptr);
}

TEST(Json, WriteJsonFilePrettyRoundTrip)
{
    JsonValue doc = JsonValue::object();
    doc["total"] = 3;
    JsonValue &layers = doc["layers"];
    layers = JsonValue::array();
    for (int i = 0; i < 3; ++i) {
        JsonValue row = JsonValue::object();
        row["index"] = i;
        row["edp"] = 1.5 * i;
        layers.push(std::move(row));
    }
    const std::string path =
        testing::TempDir() + "/mse_test_json_out.json";
    ASSERT_TRUE(writeJsonFile(path, doc));

    FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string text;
    int c;
    while ((c = std::fgetc(f)) != EOF)
        text += static_cast<char>(c);
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_EQ(text.back(), '\n');
    const auto parsed = parseJson(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->getInt("total", 0), 3);
    EXPECT_EQ(parsed->find("layers")->items()[2].getDouble("edp", 0.0),
              3.0);
}

} // namespace
} // namespace mse

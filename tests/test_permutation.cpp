#include <gtest/gtest.h>

#include "common/permutation.hpp"
#include "common/rng.hpp"

namespace mse {
namespace {

TEST(Permutation, IdentityIsPermutation)
{
    const auto p = identityPermutation(5);
    EXPECT_EQ(p, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_TRUE(isPermutation(p));
}

TEST(Permutation, RandomIsAlwaysValid)
{
    Rng rng(3);
    for (int n = 1; n <= 8; ++n) {
        for (int i = 0; i < 20; ++i)
            EXPECT_TRUE(isPermutation(randomPermutation(n, rng)));
    }
}

TEST(Permutation, DetectsInvalid)
{
    EXPECT_FALSE(isPermutation({0, 0, 1}));
    EXPECT_FALSE(isPermutation({0, 2}));
    EXPECT_FALSE(isPermutation({-1, 0}));
    EXPECT_TRUE(isPermutation({}));
}

TEST(Factorial, KnownValues)
{
    EXPECT_EQ(factorial(0), 1u);
    EXPECT_EQ(factorial(1), 1u);
    EXPECT_EQ(factorial(7), 5040u);
    EXPECT_EQ(factorial(12), 479001600u);
}

TEST(PermutationRank, IdentityIsRankZero)
{
    EXPECT_EQ(permutationRank(identityPermutation(7)), 0u);
}

TEST(PermutationRank, ReverseIsMaxRank)
{
    EXPECT_EQ(permutationRank({3, 2, 1, 0}), factorial(4) - 1);
}

TEST(PermutationRank, RoundTripExhaustiveN4)
{
    for (uint64_t r = 0; r < factorial(4); ++r) {
        const auto p = permutationFromRank(4, r);
        EXPECT_TRUE(isPermutation(p));
        EXPECT_EQ(permutationRank(p), r);
    }
}

TEST(PermutationRank, RoundTripSampledN7)
{
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        const auto p = randomPermutation(7, rng);
        EXPECT_EQ(permutationFromRank(7, permutationRank(p)), p);
    }
}

TEST(PermutationFromRank, DistinctRanksDistinctPerms)
{
    EXPECT_NE(permutationFromRank(5, 17), permutationFromRank(5, 18));
}

} // namespace
} // namespace mse

#include <gtest/gtest.h>

#include "mapping/map_space.hpp"
#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

struct SpaceCase
{
    const char *name;
    Workload workload;
    ArchConfig arch;
};

class RandomMappingP : public ::testing::TestWithParam<int>
{
  protected:
    static std::vector<SpaceCase>
    cases()
    {
        return {
            {"conv4-accelB", resnetConv4(), accelB()},
            {"conv3-accelA", resnetConv3(), accelA()},
            {"kqv-accelB", bertKqv(), accelB()},
            {"tinyconv-mini", test::tinyConv(), test::miniNpu()},
            {"dw-accelB",
             makeDepthwiseConv2d("dw", 4, 32, 14, 14, 3, 3), accelB()},
        };
    }
};

TEST_P(RandomMappingP, AlwaysLegal)
{
    const auto c = cases()[static_cast<size_t>(GetParam())];
    MapSpace space(c.workload, c.arch);
    Rng rng(100 + GetParam());
    for (int i = 0; i < 200; ++i) {
        const Mapping m = space.randomMapping(rng);
        ASSERT_EQ(validateMapping(c.workload, c.arch, m), MappingError::Ok)
            << c.name << " sample " << i << "\n"
            << m.toString(c.workload);
    }
}

TEST_P(RandomMappingP, ProducesDiverseMappings)
{
    const auto c = cases()[static_cast<size_t>(GetParam())];
    MapSpace space(c.workload, c.arch);
    Rng rng(7);
    std::set<std::string> keys;
    for (int i = 0; i < 50; ++i)
        keys.insert(space.randomMapping(rng).canonicalKey());
    EXPECT_GT(keys.size(), 40u) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Spaces, RandomMappingP, ::testing::Range(0, 5));

TEST(RepairFanout, FoldsExcessIntoTemporal)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Mapping m(arch.numLevels(), wl.numDims());
    for (int d = 0; d < wl.numDims(); ++d)
        m.level(2).temporal[d] = wl.bound(d);
    // Illegally put K=256 spatial at L1 whose fanout is 4.
    m.level(2).temporal[1] = 1;
    m.level(0).spatial[1] = 256;
    space.repairFanout(m);
    EXPECT_LE(m.spatialProduct(0), arch.levels[0].fanout);
    EXPECT_EQ(m.totalFactor(1), 256); // product preserved
}

TEST(RepairCapacity, ShrinksResidentTiles)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Mapping m(arch.numLevels(), wl.numDims());
    // Whole problem resident at L1: hopelessly oversized.
    for (int d = 0; d < wl.numDims(); ++d)
        m.level(0).temporal[d] = wl.bound(d);
    space.repairCapacity(m);
    EXPECT_EQ(validateMapping(wl, arch, m), MappingError::Ok);
}

TEST(Repair, PreservesFactorProducts)
{
    const Workload wl = inceptionConv2();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        Mapping m = space.randomMapping(rng);
        // Scramble: push everything to L1.
        for (int d = 0; d < wl.numDims(); ++d) {
            const int64_t total = m.totalFactor(d);
            for (int l = 0; l < m.numLevels(); ++l) {
                m.level(l).temporal[d] = 1;
                m.level(l).spatial[d] = 1;
            }
            m.level(0).temporal[d] = total;
        }
        ASSERT_EQ(space.repair(m), MappingError::Ok);
        for (int d = 0; d < wl.numDims(); ++d)
            EXPECT_EQ(m.totalFactor(d), wl.bound(d));
    }
}

TEST(ScaleFrom, IdenticalWorkloadKeepsMapping)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(5);
    const Mapping m = space.randomMapping(rng);
    const Mapping scaled = space.scaleFrom(m, wl, rng);
    EXPECT_EQ(validateMapping(wl, arch, scaled), MappingError::Ok);
    // Orders inherited verbatim.
    for (int l = 0; l < m.numLevels(); ++l)
        EXPECT_EQ(scaled.level(l).order, m.level(l).order);
}

TEST(ScaleFrom, AdaptsToScaledBounds)
{
    // conv3 (K=C=128, Y=X=28) -> conv4 (K=C=256, Y=X=14).
    const Workload src = resnetConv3();
    const Workload dst = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace src_space(src, arch);
    MapSpace dst_space(dst, arch);
    Rng rng(9);
    for (int i = 0; i < 20; ++i) {
        const Mapping m = src_space.randomMapping(rng);
        const Mapping scaled = dst_space.scaleFrom(m, src, rng);
        ASSERT_EQ(validateMapping(dst, arch, scaled), MappingError::Ok);
    }
}

TEST(ScaleFrom, IncompatibleDimsFallsBackToRandom)
{
    const Workload gemm = bertKqv();
    const Workload conv = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace conv_space(conv, arch);
    MapSpace gemm_space(gemm, arch);
    Rng rng(2);
    const Mapping m = gemm_space.randomMapping(rng);
    const Mapping scaled = conv_space.scaleFrom(m, gemm, rng);
    EXPECT_EQ(validateMapping(conv, arch, scaled), MappingError::Ok);
}

TEST(MapSpaceSize, MatchesPaperOrderOfMagnitude)
{
    // Sec. 4.2: O(10^21)-O(10^24) for the Table-1 CONV workloads on a
    // 3-level hierarchy.
    MapSpace space(resnetConv4(), accelB());
    const auto sz = space.size();
    EXPECT_GT(sz.log10_total, 18.0);
    EXPECT_LT(sz.log10_total, 26.0);
    EXPECT_NEAR(sz.log10_total,
                sz.log10_tile + sz.log10_order + sz.log10_parallel, 1e-9);
}

TEST(MapSpaceSize, OrderSubspaceIsFactorialPerLevel)
{
    MapSpace space(resnetConv4(), accelB());
    // (7!)^3 = 5040^3 -> log10 = 3 * log10(5040).
    EXPECT_NEAR(space.size().log10_order, 3.0 * std::log10(5040.0), 1e-9);
}

TEST(MapSpaceSize, GrowsWithWorkload)
{
    MapSpace small(test::tinyGemm(), accelB());
    MapSpace big(bertKqv(), accelB());
    EXPECT_GT(big.size().log10_total, small.size().log10_total);
}

} // namespace
} // namespace mse

#include <gtest/gtest.h>

#include <cmath>

#include "core/sparsity_aware.hpp"
#include "mappers/gamma.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

TEST(SparsityAware, ScoreIsDensityWeightedSum)
{
    const Workload wl = resnetConv3();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(1);
    const Mapping m = space.randomMapping(rng);

    SparseCostModel model;
    SparsityAwareConfig cfg;
    cfg.densities = {1.0, 0.5};
    const EvalFn eval = makeSparsityAwareEvaluator(space, model, cfg);
    const CostResult combined = eval(m);
    ASSERT_TRUE(combined.valid);

    // Recompute by hand: sum_i EDP(m | d_i) / d_i.
    double expected = 0;
    for (double d : cfg.densities) {
        Workload w = wl;
        applyDensities(w, cfg.weight_density, d);
        expected += model.evaluate(w, arch, m).edp / d;
    }
    EXPECT_NEAR(combined.edp, expected, 1e-9 * expected);
}

TEST(SparsityAware, RejectsMappingIllegalAtAnyDensity)
{
    const Workload wl = resnetConv3();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    SparseCostModel model;
    SparsityAwareConfig cfg;
    const EvalFn eval = makeSparsityAwareEvaluator(space, model, cfg);
    Mapping bad(arch.numLevels(), wl.numDims());
    const CostResult r = eval(bad);
    EXPECT_FALSE(r.valid);
    EXPECT_TRUE(std::isinf(r.edp));
}

TEST(StaticDensity, EvaluatorAnnotatesDensities)
{
    const Workload wl = resnetConv3();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(2);
    const Mapping m = space.randomMapping(rng);
    SparseCostModel model;
    const EvalFn dense = makeStaticDensityEvaluator(space, model, 1.0);
    const EvalFn sparse = makeStaticDensityEvaluator(space, model, 0.1);
    const double ed = dense(m).edp;
    const double es = sparse(m).edp;
    EXPECT_LT(es, ed); // sparser activations -> cheaper
}

TEST(SparsityAware, SearchFindsMappingRobustAcrossDensities)
{
    // The Table-4 headline: the sparsity-aware mapping stays close to
    // per-density-tailored mappings across the sweep. Here we verify the
    // weaker invariant that it beats the dense-tailored mapping at low
    // density.
    const Workload wl = resnetConv3();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    SparseCostModel model;
    SearchBudget budget;
    budget.max_samples = 1200;

    SparsityAwareConfig cfg;
    Rng rng(3);
    GammaMapper aware_mapper;
    const SearchResult aware = aware_mapper.search(
        space, makeSparsityAwareEvaluator(space, model, cfg), budget,
        rng);
    ASSERT_TRUE(aware.found());

    GammaMapper dense_mapper;
    Rng rng2(4);
    const SearchResult dense = dense_mapper.search(
        space, makeStaticDensityEvaluator(space, model, 1.0), budget,
        rng2);
    ASSERT_TRUE(dense.found());

    // Test both mappings at activation density 0.1.
    const EvalFn at01 = makeStaticDensityEvaluator(space, model, 0.1);
    EXPECT_LT(at01(aware.best_mapping).edp,
              at01(dense.best_mapping).edp * 1.5);
}

TEST(SparsityAware, CombinedEnergyAndLatencyAreWeightedToo)
{
    const Workload wl = resnetConv3();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(5);
    const Mapping m = space.randomMapping(rng);
    SparseCostModel model;
    SparsityAwareConfig cfg;
    cfg.densities = {1.0};
    const CostResult r =
        makeSparsityAwareEvaluator(space, model, cfg)(m);
    Workload w = wl;
    applyDensities(w, 1.0, 1.0);
    const CostResult single = model.evaluate(w, arch, m);
    EXPECT_NEAR(r.energy_uj, single.energy_uj,
                1e-9 * single.energy_uj);
    EXPECT_NEAR(r.latency_cycles, single.latency_cycles,
                1e-9 * single.latency_cycles);
}

} // namespace
} // namespace mse

/**
 * @file
 * Tests for the deterministic fault-injection subsystem
 * (common/fault_injection.hpp) and its integration with the sys_io
 * seam (common/sys_io.hpp): spec parsing, per-mode firing schedules,
 * cross-instance determinism, per-site isolation, and that injected
 * errnos actually surface through (or are retried by) the wrappers.
 */
#include <gtest/gtest.h>

#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <vector>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "common/fault_injection.hpp"
#include "common/sys_io.hpp"

namespace mse {
namespace {

// ---------------------------------------------------------------- parse

TEST(FaultSpecParse, EveryMode)
{
    std::string err;
    const auto spec = FaultInjector::parseSpec("every:3:ENOSPC", &err);
    ASSERT_TRUE(spec) << err;
    EXPECT_EQ(spec->mode, FaultSpec::Mode::EveryN);
    EXPECT_EQ(spec->n, 3u);
    EXPECT_EQ(spec->error, ENOSPC);
}

TEST(FaultSpecParse, OnceModeDefaultsToEio)
{
    std::string err;
    const auto spec = FaultInjector::parseSpec("once:7", &err);
    ASSERT_TRUE(spec) << err;
    EXPECT_EQ(spec->mode, FaultSpec::Mode::Once);
    EXPECT_EQ(spec->n, 7u);
    EXPECT_EQ(spec->error, EIO);
}

TEST(FaultSpecParse, ProbabilityMode)
{
    std::string err;
    const auto spec = FaultInjector::parseSpec("p:0.25:42:EINTR", &err);
    ASSERT_TRUE(spec) << err;
    EXPECT_EQ(spec->mode, FaultSpec::Mode::Probability);
    EXPECT_DOUBLE_EQ(spec->p, 0.25);
    EXPECT_EQ(spec->seed, 42u);
    EXPECT_EQ(spec->error, EINTR);
}

TEST(FaultSpecParse, NumericErrnoAccepted)
{
    std::string err;
    const auto spec = FaultInjector::parseSpec("every:1:28", &err);
    ASSERT_TRUE(spec) << err;
    EXPECT_EQ(spec->error, 28);
}

TEST(FaultSpecParse, RejectsMalformedSpecs)
{
    const char *bad[] = {
        "",            // empty
        "every",       // missing N
        "every:0",     // zero period
        "every:x",     // non-numeric
        "every:1:EBOGUS", // unknown errno
        "once:1:2:3",  // trailing junk
        "p:0.5",       // missing seed
        "p:1.5:1",     // probability out of range
        "p:0.5:notanum", // bad seed
        "sometimes:3", // unknown mode
    };
    for (const char *spec : bad) {
        std::string err;
        EXPECT_FALSE(FaultInjector::parseSpec(spec, &err))
            << "accepted '" << spec << "'";
        EXPECT_FALSE(err.empty()) << "no diagnostic for '" << spec << "'";
    }
}

TEST(FaultSpecParse, ErrnoNames)
{
    EXPECT_EQ(FaultInjector::errnoFromName("ENOSPC"), ENOSPC);
    EXPECT_EQ(FaultInjector::errnoFromName("ECONNRESET"), ECONNRESET);
    EXPECT_EQ(FaultInjector::errnoFromName("17"), 17);
    EXPECT_EQ(FaultInjector::errnoFromName("EWOULDBLOCKISH"), 0);
    EXPECT_EQ(FaultInjector::errnoFromName("0"), 0);
    EXPECT_EQ(FaultInjector::errnoFromName("-3"), 0);
}

// ------------------------------------------------------------ configure

TEST(FaultInjectorConfig, StartsDisarmed)
{
    FaultInjector inj;
    EXPECT_FALSE(inj.armed());
    EXPECT_EQ(inj.check("any.site"), 0);
}

TEST(FaultInjectorConfig, MalformedConfigRejectedAtomically)
{
    FaultInjector inj;
    ASSERT_TRUE(inj.configure("test.site:every:2:ENOSPC"));
    EXPECT_TRUE(inj.armed());

    std::string err;
    EXPECT_FALSE(inj.configure("test.site:every:2,b:bogus", &err));
    EXPECT_FALSE(err.empty());
    // The old config survives a failed reconfigure.
    EXPECT_TRUE(inj.armed());
    EXPECT_EQ(inj.check("test.site"), 0);
    EXPECT_EQ(inj.check("test.site"), ENOSPC);
}

TEST(FaultInjectorConfig, EmptyConfigDisarms)
{
    FaultInjector inj;
    ASSERT_TRUE(inj.configure("test.site:every:1"));
    ASSERT_TRUE(inj.configure(""));
    EXPECT_FALSE(inj.armed());
}

TEST(FaultInjectorConfig, MissingSiteNameRejected)
{
    FaultInjector inj;
    std::string err;
    EXPECT_FALSE(inj.configure(":every:1", &err));
    EXPECT_FALSE(inj.configure("justasite", &err));
}

// -------------------------------------------------------------- firing

TEST(FaultInjectorFiring, EveryNSchedule)
{
    FaultInjector inj;
    ASSERT_TRUE(inj.configure("test.s:every:3:ENOSPC"));
    std::vector<int> got;
    for (int i = 0; i < 7; ++i)
        got.push_back(inj.check("test.s"));
    EXPECT_EQ(got, (std::vector<int>{0, 0, ENOSPC, 0, 0, ENOSPC, 0}));
    EXPECT_EQ(inj.calls("test.s"), 7u);
    EXPECT_EQ(inj.injected("test.s"), 2u);
    EXPECT_EQ(inj.totalInjected(), 2u);
}

TEST(FaultInjectorFiring, OnceFiresExactlyOnce)
{
    FaultInjector inj;
    ASSERT_TRUE(inj.configure("test.s:once:2:EIO"));
    EXPECT_EQ(inj.check("test.s"), 0);
    EXPECT_EQ(inj.check("test.s"), EIO);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(inj.check("test.s"), 0);
    EXPECT_EQ(inj.injected("test.s"), 1u);
}

TEST(FaultInjectorFiring, ProbabilityIsDeterministicAcrossInstances)
{
    FaultInjector a, b;
    ASSERT_TRUE(a.configure("test.s:p:0.3:1234:EIO"));
    ASSERT_TRUE(b.configure("test.s:p:0.3:1234:EIO"));
    std::vector<int> seq_a, seq_b;
    for (int i = 0; i < 200; ++i) {
        seq_a.push_back(a.check("test.s"));
        seq_b.push_back(b.check("test.s"));
    }
    EXPECT_EQ(seq_a, seq_b);
    // p=0.3 over 200 draws: some fire, some don't.
    EXPECT_GT(a.injected("test.s"), 0u);
    EXPECT_LT(a.injected("test.s"), 200u);
}

TEST(FaultInjectorFiring, ProbabilitySitesGetIndependentStreams)
{
    // Same seed, two sites: the per-site RNG is seeded with
    // seed ^ fnv1a64(site), so the sequences must differ.
    FaultInjector inj;
    ASSERT_TRUE(inj.configure("test.s1:p:0.5:9:EIO,test.s2:p:0.5:9:EIO"));
    std::vector<int> seq1, seq2;
    for (int i = 0; i < 64; ++i) {
        seq1.push_back(inj.check("test.s1"));
        seq2.push_back(inj.check("test.s2"));
    }
    EXPECT_NE(seq1, seq2);
}

TEST(FaultInjectorFiring, SitesAreIsolated)
{
    FaultInjector inj;
    ASSERT_TRUE(inj.configure("test.a:every:1:ENOSPC,test.b:once:1:EIO"));
    EXPECT_EQ(inj.check("test.a"), ENOSPC);
    EXPECT_EQ(inj.check("test.c"), 0); // unconfigured site never fires
    EXPECT_EQ(inj.check("test.b"), EIO);
    EXPECT_EQ(inj.check("test.b"), 0);
    EXPECT_EQ(inj.calls("test.a"), 1u);
    EXPECT_EQ(inj.calls("test.b"), 2u);
    EXPECT_EQ(inj.calls("test.c"), 0u); // not even tracked
    EXPECT_EQ(inj.totalInjected(), 2u);
}

TEST(FaultInjectorFiring, ClearResetsCountersAndDisarms)
{
    FaultInjector inj;
    ASSERT_TRUE(inj.configure("test.s:every:1"));
    EXPECT_NE(inj.check("test.s"), 0);
    inj.clear();
    EXPECT_FALSE(inj.armed());
    EXPECT_EQ(inj.totalInjected(), 0u);
    EXPECT_EQ(inj.check("test.s"), 0);
}

// ------------------------------------------------- sys_io integration

/** Configures the process-global injector for one test and guarantees
 *  it is cleared again (a leaked config would poison later tests). */
class GlobalFaultGuard
{
  public:
    explicit GlobalFaultGuard(const std::string &config)
    {
        std::string err;
        ok_ = FaultInjector::global().configure(config, &err);
        EXPECT_TRUE(ok_) << err;
    }
    ~GlobalFaultGuard() { FaultInjector::global().clear(); }
    bool ok() const { return ok_; }

  private:
    bool ok_ = false;
};

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + "/" + name;
}

TEST(SysIoFaults, InjectedEnospcFailsWriteWithErrnoSet)
{
    const std::string path = tempPath("sysio_enospc.txt");
    GlobalFaultGuard guard("test.w:every:1:ENOSPC");
    ASSERT_TRUE(guard.ok());

    const int fd = sysOpen(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                           0644, "test.open");
    ASSERT_GE(fd, 0);
    errno = 0;
    EXPECT_FALSE(sysWriteAll(fd, "hello", 5, "test.w"));
    EXPECT_EQ(errno, ENOSPC);
    sysClose(fd);
    EXPECT_EQ(FaultInjector::global().injected("test.w"), 1u);
}

TEST(SysIoFaults, InjectedEintrOnWriteIsRetriedTransparently)
{
    const std::string path = tempPath("sysio_eintr.txt");
    GlobalFaultGuard guard("test.w:once:1:EINTR");
    ASSERT_TRUE(guard.ok());

    const int fd = sysOpen(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                           0644, "test.open");
    ASSERT_GE(fd, 0);
    // The injected EINTR hits the first attempt; the wrapper's retry
    // loop must absorb it and complete the write.
    EXPECT_TRUE(sysWriteAll(fd, "payload", 7, "test.w"));
    sysClose(fd);
    EXPECT_EQ(FaultInjector::global().injected("test.w"), 1u);

    const int rfd = sysOpen(path.c_str(), O_RDONLY, 0, "test.open");
    ASSERT_GE(rfd, 0);
    char buf[16] = {};
    EXPECT_EQ(sysRead(rfd, buf, sizeof(buf), "test.r"), 7);
    EXPECT_EQ(std::string(buf, 7), "payload");
    sysClose(rfd);
}

TEST(SysIoFaults, InjectedEintrOnPollHonorsDeadline)
{
    // EINTR on *every* poll attempt: the deadline-based retry must
    // still return 0 (timeout) instead of spinning forever or waiting
    // longer than asked.
    GlobalFaultGuard guard("test.poll:every:1:EINTR");
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(sysPoll(nullptr, 0, 30, "test.poll"), 0);
    EXPECT_GT(FaultInjector::global().injected("test.poll"), 0u);
}

#ifdef __linux__

TEST(SysIoFaults, InjectedEintrOnEpollWaitHonorsDeadline)
{
    // Same deadline contract as sysPoll, for the epoll wrapper: EINTR
    // on every attempt must degrade to a timely 0-return (timeout),
    // never a spin or an over-wait.
    const int epfd = sysEpollCreate("test.epcreate");
    ASSERT_GE(epfd, 0);
    GlobalFaultGuard guard("test.epwait:every:1:EINTR");
    ASSERT_TRUE(guard.ok());
    struct epoll_event evs[4];
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(sysEpollWait(epfd, evs, 4, 40, "test.epwait"), 0);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GE(elapsed, 35);
    EXPECT_LE(elapsed, 2000);
    EXPECT_GT(FaultInjector::global().injected("test.epwait"), 0u);
    sysClose(epfd);
}

TEST(SysIoFaults, InjectedEpollCreateFailure)
{
    GlobalFaultGuard guard("test.epcreate:once:1:EMFILE");
    ASSERT_TRUE(guard.ok());
    errno = 0;
    EXPECT_LT(sysEpollCreate("test.epcreate"), 0);
    EXPECT_EQ(errno, EMFILE);
    // once:1 spent: the next create succeeds.
    const int epfd = sysEpollCreate("test.epcreate");
    EXPECT_GE(epfd, 0);
    sysClose(epfd);
}

TEST(SysIoFaults, InjectedEpollCtlFailureSurfacesErrno)
{
    const int epfd = sysEpollCreate("test.epcreate");
    ASSERT_GE(epfd, 0);
    int pipefds[2];
    ASSERT_EQ(::pipe(pipefds), 0);
    GlobalFaultGuard guard("test.epctl:once:1:ENOMEM");
    ASSERT_TRUE(guard.ok());
    struct epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = pipefds[0];
    errno = 0;
    EXPECT_NE(sysEpollCtl(epfd, EPOLL_CTL_ADD, pipefds[0], &ev,
                          "test.epctl"),
              0);
    EXPECT_EQ(errno, ENOMEM);
    // Spent: the same registration now succeeds.
    EXPECT_EQ(sysEpollCtl(epfd, EPOLL_CTL_ADD, pipefds[0], &ev,
                          "test.epctl"),
              0);
    ::close(pipefds[0]);
    ::close(pipefds[1]);
    sysClose(epfd);
}

#endif // __linux__

TEST(SysIoFaults, InjectedOpenFailure)
{
    const std::string path = tempPath("sysio_open.txt");
    GlobalFaultGuard guard("test.open:once:1:EACCES");
    ASSERT_TRUE(guard.ok());
    errno = 0;
    EXPECT_LT(sysOpen(path.c_str(), O_WRONLY | O_CREAT, 0644,
                      "test.open"),
              0);
    EXPECT_EQ(errno, EACCES);
    // Second open proceeds (once:1 spent).
    const int fd = sysOpen(path.c_str(), O_WRONLY | O_CREAT, 0644,
                           "test.open");
    EXPECT_GE(fd, 0);
    sysClose(fd);
}

TEST(SysIoFaults, InjectedRenameFailure)
{
    GlobalFaultGuard guard("test.mv:every:1:EIO");
    ASSERT_TRUE(guard.ok());
    errno = 0;
    EXPECT_NE(sysRename("/nonexistent/a", "/nonexistent/b", "test.mv"),
              0);
    EXPECT_EQ(errno, EIO); // injected before the real call could ENOENT
}

TEST(SysIoFaults, DisarmedSeamTouchesNoCounters)
{
    FaultInjector &g = FaultInjector::global();
    g.clear();
    const std::string path = tempPath("sysio_clean.txt");
    const int fd = sysOpen(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                           0644, "store.open");
    ASSERT_GE(fd, 0);
    EXPECT_TRUE(sysWriteAll(fd, "x", 1, "store.append"));
    sysClose(fd);
    EXPECT_FALSE(g.armed());
    EXPECT_EQ(g.totalInjected(), 0u);
    EXPECT_EQ(g.calls("store.append"), 0u);
}

} // namespace
} // namespace mse

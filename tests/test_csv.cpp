#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"

namespace mse {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

class CsvTest : public ::testing::Test
{
  protected:
    std::string path_ = ::testing::TempDir() + "/mse_csv_test.csv";

    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows)
{
    {
        CsvWriter w(path_);
        ASSERT_TRUE(w.ok());
        w.writeRow(std::vector<std::string>{"a", "b"});
        w.writeRow(std::vector<double>{1.5, 2.0});
    }
    EXPECT_EQ(slurp(path_), "a,b\n1.5,2\n");
}

TEST_F(CsvTest, QuotesCellsWithCommas)
{
    {
        CsvWriter w(path_);
        w.writeRow(std::vector<std::string>{"x,y", "plain"});
    }
    EXPECT_EQ(slurp(path_), "\"x,y\",plain\n");
}

TEST_F(CsvTest, EscapesEmbeddedQuotes)
{
    {
        CsvWriter w(path_);
        w.writeRow(std::vector<std::string>{"he said \"hi\""});
    }
    EXPECT_EQ(slurp(path_), "\"he said \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, ScientificNumbersRoundTrip)
{
    {
        CsvWriter w(path_);
        w.writeRow(std::vector<double>{3.14159e10});
    }
    EXPECT_EQ(slurp(path_), "3.14159e+10\n");
}

TEST(CsvWriterBadPath, ReportsNotOk)
{
    CsvWriter w("/nonexistent_dir_zzz/file.csv");
    EXPECT_FALSE(w.ok());
}

} // namespace
} // namespace mse

/**
 * @file
 * Cluster layer: the MseService ClusterHooks seam (wrong_shard
 * rejection, replication merge semantics), the ReplicationAgent
 * shipping improvements between live daemons, and ClusterClient
 * routing / redirect / failover against a real three-node loopback
 * cluster — the in-process version of what chaos_harness.sh Phase 5
 * certifies under SIGKILL storms.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_client.hpp"
#include "cluster/replication.hpp"
#include "common/cluster_faults.hpp"
#include "common/fault_injection.hpp"
#include "common/math_util.hpp"
#include "common/metric_names.hpp"
#include "service/net.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "test_helpers.hpp"
#include "service/error_codes.hpp"

namespace mse {
namespace {

using test::allAtTop;
using test::miniNpu;
using test::tinyGemm;

/** Arms the global injector for one test, disarming on scope exit. */
class GlobalFaultGuard
{
  public:
    explicit GlobalFaultGuard(const std::string &config)
    {
        std::string err;
        EXPECT_TRUE(FaultInjector::global().configure(config, &err))
            << err;
    }
    ~GlobalFaultGuard()
    {
        FaultInjector::global().clear();
        clusterFaultPeersConfigure("");
    }
};

bool
waitUntil(const std::function<bool()> &pred, int timeout_ms = 15000)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
}

StoreEntry
makeEntry(const Workload &wl, const ArchConfig &arch, double score)
{
    StoreEntry e;
    e.workload = wl;
    e.arch_sig = fnv1a64Hex(arch.signature());
    e.objective = Objective::Edp;
    e.mapping = allAtTop(wl, arch);
    e.score = score;
    e.energy_uj = 1.0;
    e.latency_cycles = 10.0;
    e.samples = 5;
    return e;
}

// ------------------------------------------------- hooks seam (no TCP)

TEST(ClusterHooks, ForeignKeysRejectWrongShardWithOwner)
{
    ServiceConfig cfg;
    cfg.default_samples = 50;
    MseService service(cfg);
    MseService::ClusterHooks hooks;
    hooks.self = "127.0.0.1:1";
    hooks.accepts_key = [](const std::string &) { return false; };
    hooks.owner_of = [](const std::string &) {
        return std::string("10.0.0.9:7");
    };
    service.setClusterHooks(std::move(hooks));

    SearchRequest req;
    req.workload = tinyGemm();
    req.arch = miniNpu();
    const SearchReply r = service.search(req);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_code, wire_errors::kWrongShard);
    EXPECT_EQ(r.error_owner, "10.0.0.9:7");
    EXPECT_EQ(r.retry_after_ms, 0); // not retryable *here*

    // The encoded reply carries the redirect target for clients.
    const JsonValue j = searchReplyJson(r);
    EXPECT_EQ(j.find("error")->getString("owner", ""), "10.0.0.9:7");

    // The rejection never reached the store or the executors.
    EXPECT_EQ(service.store().size(), 0u);
}

TEST(ClusterHooks, AcceptedSearchStampsServedByAndStoreKey)
{
    ServiceConfig cfg;
    cfg.default_samples = 50;
    MseService service(cfg);
    MseService::ClusterHooks hooks;
    hooks.self = "127.0.0.1:2";
    hooks.accepts_key = [](const std::string &) { return true; };
    service.setClusterHooks(std::move(hooks));

    SearchRequest req;
    req.workload = tinyGemm();
    req.arch = miniNpu();
    const SearchReply r = service.search(req);
    ASSERT_TRUE(r.ok) << r.error_message;
    EXPECT_EQ(r.served_by, "127.0.0.1:2");
    EXPECT_EQ(r.store_key, MappingStore::keyOf(req.workload, req.arch,
                                               req.objective,
                                               req.sparse));
    // Outside a cluster these fields stay empty (and off the wire).
    MseService plain(cfg);
    const SearchReply p = plain.search(req);
    ASSERT_TRUE(p.ok);
    EXPECT_TRUE(p.served_by.empty());
    EXPECT_TRUE(p.store_key.empty());
}

TEST(ClusterHooks, ApplyReplicationMergesBestScoreWinsWithoutLooping)
{
    MseService service;
    size_t improvements = 0;
    MseService::ClusterHooks hooks;
    hooks.on_improved = [&improvements](const StoreEntry &) {
        ++improvements;
    };
    service.setClusterHooks(std::move(hooks));

    const Workload wl = tinyGemm();
    const ArchConfig arch = miniNpu();
    const StoreEntry good = makeEntry(wl, arch, 100.0);
    StoreEntry invalid = makeEntry(wl, arch, 90.0);
    invalid.arch_sig = "nope"; // not a 16-hex signature hash

    // New key + worse duplicate + invalid record in one batch.
    const auto first = service.applyReplication(
        {good, makeEntry(wl, arch, 150.0), invalid});
    EXPECT_EQ(first.first, 1u);  // merged
    EXPECT_EQ(first.second, 2u); // ignored
    EXPECT_EQ(service.store().size(), 1u);

    // Re-applying is idempotent; a strictly better record wins.
    EXPECT_EQ(service.applyReplication({good}).second, 1u);
    EXPECT_EQ(service.applyReplication({makeEntry(wl, arch, 80.0)})
                  .first,
              1u);
    const auto hit =
        service.store().lookup(wl, arch, Objective::Edp, false, 0.0);
    ASSERT_EQ(hit.hit, StoreHit::Exact);
    EXPECT_EQ(hit.entry.score, 80.0);

    // Merges must never re-fire on_improved — that is how a record
    // bouncing between replicas would loop forever.
    EXPECT_EQ(improvements, 0u);

    // Metrics surface the merge/ignore split.
    const JsonValue stats = service.statsJson();
    const JsonValue *store = stats.find("store");
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->getInt("replicated_in_merged", -1), 2);
    EXPECT_EQ(store->getInt("replicated_in_ignored", -1), 3);
}

// ------------------------------------------- live three-node cluster

/** Three daemons on loopback wired exactly like mse_serve does it. */
class ClusterTest : public ::testing::Test
{
  protected:
    struct Node
    {
        // Destruction order matters and is the reverse of declaration:
        // server first (no new requests), then service (executors may
        // still call on_improved), then the agent they call into.
        std::unique_ptr<ReplicationAgent> agent;
        std::unique_ptr<MseService> service;
        std::unique_ptr<ServiceServer> server;
        std::string addr;
    };

    static constexpr size_t kNodes = 3;
    static constexpr size_t kReplicas = 2;

    void SetUp() override
    {
        // Phase 1: listen everywhere on ephemeral ports to learn the
        // node list (nothing can reach a node before we hand out its
        // address, so wiring the hooks after start() is race-free).
        for (size_t i = 0; i < kNodes; ++i) {
            auto node = std::make_unique<Node>();
            ServiceConfig scfg;
            scfg.default_samples = 150;
            // The ThreadPool one-top-level-caller contract: several
            // services in one process need the ScopedInline executor
            // path, i.e. executors >= 2.
            scfg.executors = 2;
            node->service = std::make_unique<MseService>(scfg);
            node->server = std::make_unique<ServiceServer>(
                *node->service, ServerConfig{});
            std::string err;
            ASSERT_TRUE(node->server->start(&err)) << err;
            node->addr = "127.0.0.1:" +
                         std::to_string(node->server->port());
            cluster_.nodes.push_back(node->addr);
            nodes_.push_back(std::move(node));
        }
        cluster_.replication = kReplicas;

        // Phase 2: every node gets the full ring + its agent, with
        // the anti-entropy hooks wired exactly like mse_serve does.
        const ShardRing ring = cluster_.ring();
        for (auto &node : nodes_) {
            ClusterConfig mine = cluster_;
            mine.self = node->addr;
            MseService *svc = node->service.get();
            ReplicationHooks rhooks;
            rhooks.local_digest = [svc]() {
                return svc->store().bestScores();
            };
            rhooks.apply_entries =
                [svc](const std::vector<StoreEntry> &entries) {
                    return svc->applyReplication(entries).first;
                };
            node->agent = std::make_unique<ReplicationAgent>(
                mine, ReplicationConfig{}, std::move(rhooks));
            MseService::ClusterHooks hooks;
            hooks.self = node->addr;
            const std::string self = node->addr;
            hooks.accepts_key = [ring, self](const std::string &key) {
                return ring.isReplica(key, self, kReplicas);
            };
            hooks.owner_of = [ring](const std::string &key) {
                return ring.ownerOf(key);
            };
            ReplicationAgent *agent = node->agent.get();
            hooks.on_improved = [agent](const StoreEntry &e) {
                agent->enqueue(e);
            };
            hooks.augment_stats = [agent](JsonValue &j) {
                j["replication"] = agent->statsJson();
            };
            node->service->setClusterHooks(std::move(hooks));
        }
    }

    void TearDown() override
    {
        for (auto &node : nodes_) {
            node->server->stop();
            node->agent->stop();
        }
    }

    Node &nodeAt(const std::string &addr)
    {
        for (auto &node : nodes_)
            if (node->addr == addr)
                return *node;
        ADD_FAILURE() << "unknown node " << addr;
        return *nodes_[0];
    }

    static std::string searchLine(int m)
    {
        return "{\"type\":\"search\",\"workload\":{\"gemm\":"
               "{\"b\":1,\"m\":" +
               std::to_string(m) +
               ",\"k\":8,\"n\":8}},"
               "\"arch\":{\"npu\":{\"l2_bytes\":8192,\"l1_bytes\":128,"
               "\"num_pes\":4,\"alus_per_pe\":2}},\"seed\":1}";
    }

    /** Store key the daemons will file searchLine(m) under. */
    std::string keyFor(int m) const
    {
        return MappingStore::keyOf(makeGemm("gemm", 1, m, 8, 8),
                                   makeNpu("npu", 8192, 128, 4, 2),
                                   Objective::Edp, false);
    }

    ClusterConfig cluster_;
    std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(ClusterTest, RoutedSearchReplicationAndFailover)
{
    ClusterClient client(cluster_, 30000);
    const std::string line = searchLine(8);
    const auto route = client.routeOf(line);
    ASSERT_EQ(route.size(), kReplicas);
    EXPECT_EQ(route[0], cluster_.ring().ownerOf(keyFor(8)));

    // Cold search lands on the key's ring owner.
    auto cold = client.request(line);
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_EQ(cold.served_by, route[0]);
    EXPECT_EQ(cold.nodes_tried, 1u);
    const auto cold_doc = parseJson(cold.reply);
    ASSERT_TRUE(cold_doc.has_value());
    ASSERT_TRUE(cold_doc->getBool("ok", false)) << cold.reply;
    EXPECT_EQ(cold_doc->getString("store", ""), "cold");
    EXPECT_EQ(cold_doc->getString("served_by", ""), route[0]);
    EXPECT_EQ(cold_doc->getString("store_key", ""), keyFor(8));
    const double cold_score = cold_doc->getDouble("score", 0.0);
    ASSERT_GT(cold_score, 0.0);

    // The owner's agent ships the improvement to the ring successor.
    Node &successor = nodeAt(route[1]);
    ASSERT_TRUE(waitUntil([&] {
        return successor.service->store()
                   .lookup(makeGemm("gemm", 1, 8, 8, 8),
                           makeNpu("npu", 8192, 128, 4, 2),
                           Objective::Edp, false, 0.0)
                   .hit == StoreHit::Exact;
    })) << "replication to " << route[1] << " never arrived";
    // And the owner's agent queue drains (acknowledged ship).
    Node &owner = nodeAt(route[0]);
    EXPECT_TRUE(waitUntil(
        [&] { return owner.agent->queueDepth() == 0; }));

    // Warm repeat still routes to the owner.
    auto warm = client.request(line);
    ASSERT_TRUE(warm.ok) << warm.error;
    const auto warm_doc = parseJson(warm.reply);
    ASSERT_TRUE(warm_doc.has_value());
    EXPECT_EQ(warm_doc->getString("store", ""), "exact");

    // Kill the owner: the client fails over to the successor, whose
    // replicated copy turns the retry into a warm exact hit — the
    // acknowledged record survived its owner's death.
    owner.server->stop();
    auto failover = client.request(line);
    ASSERT_TRUE(failover.ok) << failover.error;
    EXPECT_EQ(failover.served_by, route[1]);
    EXPECT_EQ(failover.nodes_tried, 2u);
    const auto fo_doc = parseJson(failover.reply);
    ASSERT_TRUE(fo_doc.has_value());
    ASSERT_TRUE(fo_doc->getBool("ok", false)) << failover.reply;
    EXPECT_EQ(fo_doc->getString("store", ""), "exact");
    EXPECT_LE(fo_doc->getDouble("score", 1e300),
              cold_score * (1.0 + 1e-9));
}

TEST_F(ClusterTest, StaleClientFollowsWrongShardRedirect)
{
    // A client that only knows one node (stale topology). Pick a key
    // that node neither owns nor replicates: the daemon rejects with
    // the owner's address and the client self-heals in one extra hop.
    const ShardRing ring = cluster_.ring();
    int m = 0;
    for (int cand = 8; cand < 4096 && m == 0; cand += 8) {
        const auto reps = ring.replicasOf(keyFor(cand), kReplicas);
        if (std::find(reps.begin(), reps.end(), nodes_[0]->addr) ==
            reps.end())
            m = cand;
    }
    ASSERT_NE(m, 0) << "no key avoids node 0 in this ring";

    ClusterConfig stale;
    stale.nodes = {nodes_[0]->addr};
    stale.replication = kReplicas;
    ClusterClient client(stale, 30000);
    auto res = client.request(searchLine(m));
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.redirected);
    EXPECT_EQ(res.served_by, ring.ownerOf(keyFor(m)));
    EXPECT_EQ(res.nodes_tried, 2u);
    const auto doc = parseJson(res.reply);
    ASSERT_TRUE(doc.has_value());
    EXPECT_TRUE(doc->getBool("ok", false)) << res.reply;
}

TEST_F(ClusterTest, BroadcastReachesEveryNodeAndSkipsDeadOnes)
{
    ClusterClient client(cluster_, 30000);
    auto all = client.broadcast("{\"type\":\"ping\"}");
    ASSERT_EQ(all.size(), kNodes);
    for (const auto &[node, res] : all) {
        EXPECT_TRUE(res.ok) << node << ": " << res.error;
        EXPECT_EQ(res.served_by, node);
    }

    nodes_[1]->server->stop();
    all = client.broadcast("{\"type\":\"ping\"}");
    size_t ok = 0, failed = 0;
    for (const auto &[node, res] : all) {
        if (res.ok)
            ++ok;
        else {
            ++failed;
            EXPECT_EQ(node, nodes_[1]->addr);
            EXPECT_FALSE(res.error.empty());
        }
    }
    EXPECT_EQ(ok, kNodes - 1);
    EXPECT_EQ(failed, 1u);
}

TEST_F(ClusterTest, StatsCarrySelfPerKeyAndReplicationBlocks)
{
    ClusterClient client(cluster_, 30000);
    auto res = client.request(searchLine(8));
    ASSERT_TRUE(res.ok) << res.error;

    const Node &owner =
        nodeAt(cluster_.ring().ownerOf(keyFor(8)));
    const JsonValue stats = owner.service->statsJson();
    EXPECT_EQ(stats.getString("self", ""), owner.addr);
    EXPECT_GE(stats.getDouble("uptime_s", -1.0), 0.0);

    const JsonValue *store = stats.find("store");
    ASSERT_NE(store, nullptr);
    const JsonValue *per_key = store->find("per_key");
    ASSERT_NE(per_key, nullptr);
    EXPECT_EQ(per_key->getInt(keyFor(8), 0), 1);

    const JsonValue *repl = stats.find("replication");
    ASSERT_NE(repl, nullptr);
    EXPECT_GE(repl->getInt("queue_depth", -1), 0);
    const JsonValue *per_peer = repl->find("peers");
    ASSERT_NE(per_peer, nullptr);
    // Every node but self appears as a peer, acked catches shipped.
    size_t peers = 0;
    for (const auto &member : per_peer->members()) {
        ++peers;
        EXPECT_NE(member.first, owner.addr);
    }
    EXPECT_EQ(peers, kNodes - 1);
    EXPECT_TRUE(waitUntil([&] {
        const JsonValue s = owner.service->statsJson();
        const JsonValue *r = s.find("replication");
        return r && r->getInt("queue_depth", -1) == 0 &&
               r->getInt("acked", 0) >= 1;
    }));
}

TEST_F(ClusterTest, DirectSearchToReplicaIsAcceptedAndShipsBack)
{
    // A replica (non-owner) accepts direct searches for its keys —
    // that is exactly what failover relies on — and its improvements
    // replicate to the other members of the replica set.
    const auto route = cluster_.ring().replicasOf(keyFor(8), kReplicas);
    ASSERT_EQ(route.size(), 2u);
    Node &replica = nodeAt(route[1]);

    std::string host;
    uint16_t port = 0;
    ASSERT_TRUE(splitHostPort(replica.addr, &host, &port));
    std::string err;
    const int fd = connectTcp(host, port, &err);
    ASSERT_GE(fd, 0) << err;
    ASSERT_TRUE(sendLine(fd, searchLine(8)));
    LineReader reader(fd);
    std::string out;
    ASSERT_EQ(reader.readLine(&out, 60000), LineReader::Status::Line);
    closeSocket(fd);
    const auto doc = parseJson(out);
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->getBool("ok", false)) << out;
    EXPECT_EQ(doc->getString("served_by", ""), replica.addr);

    // The replica's improvement flows back to the key's owner.
    Node &owner = nodeAt(route[0]);
    EXPECT_TRUE(waitUntil([&] {
        return owner.service->store()
                   .lookup(makeGemm("gemm", 1, 8, 8, 8),
                           makeNpu("npu", 8192, 128, 4, 2),
                           Objective::Edp, false, 0.0)
                   .hit == StoreHit::Exact;
    })) << "replica improvement never reached the owner";
}

// -------------------------------------------------- agent edge cases

TEST(ReplicationAgent, SurvivesDeadPeersAndCountsFailures)
{
    // Both peers are unreachable: enqueue must stay non-blocking, the
    // worker must keep retrying with backoff (not spin or crash), and
    // stop() must return promptly despite pending batches.
    ClusterConfig cfg;
    cfg.self = "127.0.0.1:1";
    // Reserved discard port: nothing listens there in the sandbox.
    cfg.nodes = {"127.0.0.1:1", "127.0.0.1:9", "127.0.0.1:19"};
    cfg.replication = 3;
    ReplicationConfig rcfg;
    rcfg.backoff_base_ms = 10;
    rcfg.backoff_cap_ms = 40;
    rcfg.io_timeout_ms = 200;
    ReplicationAgent agent(cfg, rcfg);

    agent.enqueue(makeEntry(tinyGemm(), miniNpu(), 10.0));
    EXPECT_TRUE(waitUntil([&] {
        const JsonValue s = agent.statsJson();
        return s.getInt("ship_failures", 0) >= 1;
    }));
    EXPECT_EQ(agent.queueDepth(), 2u); // one item queued per peer
    const JsonValue s = agent.statsJson();
    EXPECT_GE(s.getDouble("lag_s", -1.0), 0.0);
    agent.stop();
    agent.stop(); // idempotent
}

TEST(ReplicationAgent, DropsOldestOnOverflowAndCountsIt)
{
    ClusterConfig cfg;
    cfg.self = "127.0.0.1:1";
    cfg.nodes = {"127.0.0.1:1", "127.0.0.1:9"};
    cfg.replication = 2;
    ReplicationConfig rcfg;
    rcfg.queue_capacity = 4;
    rcfg.backoff_base_ms = 50;
    rcfg.backoff_cap_ms = 50;
    rcfg.io_timeout_ms = 100;
    ReplicationAgent agent(cfg, rcfg);

    // Distinct keys so every record is a separate queue item.
    for (int m = 1; m <= 12; ++m)
        agent.enqueue(
            makeEntry(makeGemm("g", 1, m, 2, 2), miniNpu(), 10.0));
    EXPECT_LE(agent.queueDepth(), 4u);
    const JsonValue s = agent.statsJson();
    EXPECT_GE(s.getInt("dropped", 0), 8);
    agent.stop();
}

TEST(ReplicationBackoff, ReplaysTheDeterministicSchedule)
{
    // The retry schedule is a pure function — no RNG, no clock — so a
    // failing peer produces exactly this sequence, every run.
    ReplicationConfig cfg; // base 100ms, cap 2000ms
    std::vector<int> seq;
    int b = 0;
    for (int i = 0; i < 8; ++i) {
        b = replicationNextBackoffMs(b, cfg);
        seq.push_back(b);
    }
    const std::vector<int> expect = {100,  200,  400,  800,
                                     1600, 2000, 2000, 2000};
    EXPECT_EQ(seq, expect);
    // A successful ship resets to 0; the next failure starts over.
    EXPECT_EQ(replicationNextBackoffMs(0, cfg), 100);
    // The cap binds even when doubling would overshoot it.
    ReplicationConfig tight;
    tight.backoff_base_ms = 10;
    tight.backoff_cap_ms = 35;
    EXPECT_EQ(replicationNextBackoffMs(10, tight), 20);
    EXPECT_EQ(replicationNextBackoffMs(20, tight), 35);
    EXPECT_EQ(replicationNextBackoffMs(35, tight), 35);
}

TEST(ReplicationAgent, InjectedShipFaultRetriesAndDelivers)
{
    // cluster.ship severs the first outbound batch; the batch must
    // stay queued through the backoff and land on the retry.
    ServiceConfig scfg;
    scfg.executors = 2;
    MseService service(scfg);
    ServiceServer server(service, ServerConfig{});
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    const std::string addr =
        "127.0.0.1:" + std::to_string(server.port());
    ClusterConfig cfg;
    cfg.self = "127.0.0.1:1";
    cfg.nodes = {cfg.self, addr};
    cfg.replication = 2;
    ReplicationConfig rcfg;
    rcfg.flush_interval_ms = 5;
    rcfg.backoff_base_ms = 10;
    rcfg.backoff_cap_ms = 20;
    rcfg.io_timeout_ms = 2000;
    ReplicationAgent agent(cfg, rcfg);

    GlobalFaultGuard guard("cluster.ship:once:1:EPIPE");
    agent.enqueue(makeEntry(tinyGemm(), miniNpu(), 10.0));
    ASSERT_TRUE(waitUntil([&] { return service.store().size() == 1; }));
    // The store merge lands before the worker processes the ack, so
    // wait for the full post-success state (ack counted, backoff
    // reset) rather than sampling stats right after the merge.
    ASSERT_TRUE(waitUntil([&] {
        const JsonValue js = agent.statsJson();
        const JsonValue *jp = js.find("peers")->find(addr);
        return js.getInt("acked", 0) >= 1 && jp != nullptr &&
               jp->getInt("backoff_ms", -1) == 0;
    }));
    const JsonValue s = agent.statsJson();
    EXPECT_GE(s.getInt("ship_failures", 0), 1);
    EXPECT_EQ(s.getInt("queue_depth", -1), 0);
    EXPECT_EQ(s.getInt("acked", -1), 1);
    agent.stop();
    server.stop();
}

// ------------------------------------------------ client TTL failover

TEST(ClusterClientTtl, DefersFailedNodeUntilTtlExpires)
{
    ClusterConfig cfg;
    cfg.nodes = {"127.0.0.1:9", "127.0.0.1:19"};
    cfg.replication = 2;
    ClusterClient client(cfg, 1000, /*node_retry_ttl_ms=*/300);

    EXPECT_FALSE(client.isDeferred("127.0.0.1:9"));
    client.markFailed("127.0.0.1:9");
    EXPECT_TRUE(client.isDeferred("127.0.0.1:9"));
    // Deferred nodes move to the back — never out — of the order.
    const std::vector<std::string> deferred = client.orderCandidates(
        {"127.0.0.1:9", "127.0.0.1:19"});
    const std::vector<std::string> want_deferred = {"127.0.0.1:19",
                                                    "127.0.0.1:9"};
    EXPECT_EQ(deferred, want_deferred);

    // The TTL expires on its own: the node regains its ring position
    // without any successful contact (it will simply be *tried* again).
    std::this_thread::sleep_for(std::chrono::milliseconds(350));
    EXPECT_FALSE(client.isDeferred("127.0.0.1:9"));
    const std::vector<std::string> healed = client.orderCandidates(
        {"127.0.0.1:9", "127.0.0.1:19"});
    const std::vector<std::string> want_healed = {"127.0.0.1:9",
                                                  "127.0.0.1:19"};
    EXPECT_EQ(healed, want_healed);

    // TTL 0 disables the failure cache entirely.
    ClusterClient off(cfg, 1000, 0);
    off.markFailed("127.0.0.1:9");
    EXPECT_FALSE(off.isDeferred("127.0.0.1:9"));
}

TEST_F(ClusterTest, FailoverDefersDeadOwnerAndClearsOnSuccess)
{
    // Long TTL so only success (not expiry) can clear a deferral.
    ClusterClient client(cluster_, 30000, /*node_retry_ttl_ms=*/60000);
    const std::string line = searchLine(8);
    const auto route = client.routeOf(line);
    ASSERT_EQ(route.size(), kReplicas);
    ASSERT_TRUE(client.request(line).ok);
    // Wait for the replica copy that failover depends on.
    Node &successor = nodeAt(route[1]);
    ASSERT_TRUE(waitUntil([&] {
        return successor.service->store()
                   .lookup(makeGemm("gemm", 1, 8, 8, 8),
                           makeNpu("npu", 8192, 128, 4, 2),
                           Objective::Edp, false, 0.0)
                   .hit == StoreHit::Exact;
    }));

    // Dead owner: the first sweep pays one failed try, marks it.
    nodeAt(route[0]).server->stop();
    const auto first = client.request(line);
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_EQ(first.served_by, route[1]);
    EXPECT_EQ(first.nodes_tried, 2u);
    EXPECT_TRUE(client.isDeferred(route[0]));

    // While deferred, the healthy replica is tried first: no repeated
    // connect-timeout tax on every request (the pre-TTL behavior).
    const auto second = client.request(line);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_EQ(second.served_by, route[1]);
    EXPECT_EQ(second.nodes_tried, 1u);

    // A deferred node is still swept — and one success un-defers it
    // immediately, no TTL wait.
    client.markFailed(route[1]);
    EXPECT_TRUE(client.isDeferred(route[1]));
    const auto third = client.request(line);
    ASSERT_TRUE(third.ok) << third.error;
    EXPECT_EQ(third.served_by, route[1]);
    EXPECT_EQ(third.nodes_tried, 2u); // dead owner first, then replica
    EXPECT_FALSE(client.isDeferred(route[1]));
}

// --------------------------------------------- anti-entropy + gating

TEST_F(ClusterTest, AntiEntropySyncPullsMissedRecords)
{
    // Seed one record via a routed search; it lives on the key's two
    // replicas. The third node plays the rejoining daemon: its sync
    // digest is empty, so a round against the owner pulls the record.
    ClusterClient client(cluster_, 30000);
    ASSERT_TRUE(client.request(searchLine(8)).ok);
    const auto route = cluster_.ring().replicasOf(keyFor(8), kReplicas);
    std::string outsider_addr;
    for (const auto &node : nodes_)
        if (std::find(route.begin(), route.end(), node->addr) ==
            route.end())
            outsider_addr = node->addr;
    ASSERT_FALSE(outsider_addr.empty());
    Node &outsider = nodeAt(outsider_addr);
    ASSERT_EQ(outsider.service->store().size(), 0u);

    // First round is severed by the cluster.sync fault site (scoped to
    // the owner peer); the worker backs off and the retry converges.
    clusterFaultPeersConfigure(route[0]);
    GlobalFaultGuard guard("cluster.sync:once:1:EIO");
    outsider.agent->requestSync(route[0]);
    ASSERT_TRUE(waitUntil(
        [&] { return outsider.service->store().size() == 1; }));
    // Rounds repeat until one comes back empty, then the flag clears.
    EXPECT_TRUE(waitUntil(
        [&] { return !outsider.agent->syncPending(route[0]); }));
    const JsonValue s = outsider.agent->statsJson();
    EXPECT_GE(s.getInt("sync_rounds", 0), 2);
    EXPECT_GE(s.getInt("sync_pulled", 0), 1);
    EXPECT_GE(s.getInt("ship_failures", 0), 1);
}

TEST_F(ClusterTest, InboundGateRefusesOrSeversClusterOpsOnly)
{
    std::string host;
    uint16_t port = 0;
    ASSERT_TRUE(splitHostPort(nodes_[0]->addr, &host, &port));
    std::string err;

    {
        // Non-sever errno: structured retryable refusal.
        clusterFaultPeersConfigure("10.0.0.1:1");
        GlobalFaultGuard guard("cluster.accept:every:1:EIO");
        const int fd = connectTcp(host, port, &err);
        ASSERT_GE(fd, 0) << err;
        ASSERT_TRUE(sendLine(fd, "{\"type\":\"replicate\","
                                 "\"from\":\"10.0.0.1:1\","
                                 "\"entries\":[]}"));
        LineReader reader(fd);
        std::string line;
        ASSERT_EQ(reader.readLine(&line, 30000),
                  LineReader::Status::Line);
        const auto doc = parseJson(line);
        ASSERT_TRUE(doc.has_value());
        EXPECT_FALSE(doc->getBool("ok", true));
        const JsonValue *e = doc->find("error");
        ASSERT_NE(e, nullptr);
        EXPECT_EQ(e->getString("code", ""), wire_errors::kUnavailable);
        EXPECT_EQ(e->getInt("retry_after_ms", -1), 100);
        EXPECT_TRUE(
            wire_errors::isRetryable(wire_errors::kUnavailable));

        // Client ops are never gated: a ping on the same connection
        // sails through while the fault stays armed.
        ASSERT_TRUE(sendLine(fd, "{\"type\":\"ping\"}"));
        ASSERT_EQ(reader.readLine(&line, 30000),
                  LineReader::Status::Line);
        EXPECT_TRUE(parseJson(line)->getBool("ok", false));

        // The per-peer filter scopes the partition: a replicate from
        // an unfiltered sender is untouched.
        ASSERT_TRUE(sendLine(fd, "{\"type\":\"replicate\","
                                 "\"from\":\"10.0.0.2:2\","
                                 "\"entries\":[]}"));
        ASSERT_EQ(reader.readLine(&line, 30000),
                  LineReader::Status::Line);
        EXPECT_TRUE(parseJson(line)->getBool("ok", false)) << line;
        closeSocket(fd);
    }
    {
        // EPIPE/ECONNRESET: the connection is severed with no reply —
        // indistinguishable from a mid-request netsplit.
        clusterFaultPeersConfigure("10.0.0.1:1");
        GlobalFaultGuard guard("cluster.accept:every:1:EPIPE");
        const int fd = connectTcp(host, port, &err);
        ASSERT_GE(fd, 0) << err;
        ASSERT_TRUE(sendLine(fd, "{\"type\":\"probe\","
                                 "\"from\":\"10.0.0.1:1\"}"));
        LineReader reader(fd);
        std::string line;
        EXPECT_EQ(reader.readLine(&line, 30000),
                  LineReader::Status::Closed);
        closeSocket(fd);
    }
}

TEST(ReplicationAgent, StatsSchemaCarriesEveryDeclaredReplicationKey)
{
    // Pins the agent's stats block to the metric_names registry: the
    // declared replication.* paths (mounted under "replication" by
    // mse_serve's augment_stats hook) must all be present, including
    // one per_peer.* child per peer.
    ClusterConfig cfg;
    cfg.self = "127.0.0.1:1";
    cfg.nodes = {"127.0.0.1:1", "127.0.0.1:9"};
    cfg.replication = 2;
    ReplicationConfig rcfg;
    rcfg.io_timeout_ms = 100;
    ReplicationAgent agent(cfg, rcfg);
    const JsonValue stats = agent.statsJson();
    const std::string prefix = "replication.";
    for (const char *key : metric_names::kConditionalKeys) {
        const std::string k = key;
        if (k.rfind(prefix, 0) != 0)
            continue;
        EXPECT_NE(test::findMetricPath(stats, k.substr(prefix.size())),
                  nullptr)
            << key;
    }
    agent.stop();
}

} // namespace
} // namespace mse

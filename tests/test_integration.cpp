/**
 * @file
 * End-to-end integration tests: whole deployment workflows across
 * modules, the closest thing to a user's compile flow.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "core/mse_engine.hpp"
#include "core/objective.hpp"
#include "mapping/mapping_io.hpp"
#include "mappers/gamma.hpp"
#include "mappers/local_search.hpp"
#include "mappers/random_pruned.hpp"
#include "model/analysis.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

TEST(Integration, CompileSessionWithPersistedCacheWarmStarts)
{
    // Session 1: optimize two ResNet layers, persist the replay buffer.
    const std::string cache =
        ::testing::TempDir() + "/mse_integration_cache.txt";
    const ArchConfig arch = accelB();
    {
        MseEngine engine(arch);
        GammaMapper gamma;
        MseOptions opts;
        opts.budget.max_samples = 1200;
        Rng rng(1);
        engine.optimize(resnetConv3(), gamma, opts, rng);
        engine.optimize(resnetConv4(), gamma, opts, rng);
        ASSERT_TRUE(engine.replay().save(cache));
    }

    // Session 2: fresh engine, load the cache, map a similar layer with
    // warm-start; the initial generation must already be far below a
    // cold random population's.
    {
        MseEngine engine(arch);
        const size_t loaded = engine.replay().load(
            cache, [&](const Workload &wl, const Mapping &m) {
                return CostModel::evaluate(wl, arch, m);
            });
        ASSERT_EQ(loaded, 2u);

        const Workload target =
            makeConv2d("conv4_wide", 16, 256, 512, 14, 14, 3, 3);
        GammaMapper gamma;
        MseOptions warm_opts;
        warm_opts.budget.max_samples = 600;
        warm_opts.warm_start = WarmStartStrategy::BySimilarity;
        Rng rng(2);
        const MseOutcome warm =
            engine.optimize(target, gamma, warm_opts, rng);

        MseEngine cold_engine(arch);
        MseOptions cold_opts = warm_opts;
        cold_opts.warm_start = WarmStartStrategy::None;
        Rng rng2(2);
        const MseOutcome cold =
            cold_engine.optimize(target, gamma, cold_opts, rng2);

        ASSERT_TRUE(warm.search.found() && cold.search.found());
        EXPECT_LT(warm.search.log.best_edp_per_generation.front(),
                  cold.search.log.best_edp_per_generation.front());
    }
    std::remove(cache.c_str());
}

TEST(Integration, BestMappingSurvivesSerializationIntoDeployment)
{
    // Optimize, serialize the winner, "ship" it, deserialize and verify
    // identical cost and legality on the deployment side.
    const Workload wl = bertAttn();
    const ArchConfig arch = accelA();
    MapSpace space(wl, arch);
    EvalFn eval = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    GammaMapper gamma;
    SearchBudget budget;
    budget.max_samples = 1000;
    Rng rng(3);
    const SearchResult r = gamma.search(space, eval, budget, rng);
    ASSERT_TRUE(r.found());

    const std::string wire = serializeMapping(r.best_mapping);
    const auto shipped = parseMapping(wire);
    ASSERT_TRUE(shipped.has_value());
    EXPECT_EQ(validateMapping(wl, arch, *shipped), MappingError::Ok);
    EXPECT_DOUBLE_EQ(CostModel::evaluate(wl, arch, *shipped).edp,
                     r.best_cost.edp);
}

TEST(Integration, AllMappersAgreeOnTheEasyOptimum)
{
    // A tiny problem whose optimum every mapper should approach: the
    // cross-mapper sanity net for the whole stack.
    const Workload wl = makeGemm("small", 1, 8, 8, 8);
    const ArchConfig arch = makeNpu("small-npu", 1 << 14, 1 << 10, 4, 2);
    MapSpace space(wl, arch);
    EvalFn eval = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    SearchBudget budget;
    budget.max_samples = 2000;

    std::vector<double> results;
    {
        RandomPrunedMapper m;
        Rng rng(4);
        results.push_back(
            m.search(space, eval, budget, rng).best_cost.edp);
    }
    {
        GammaMapper m;
        Rng rng(5);
        results.push_back(
            m.search(space, eval, budget, rng).best_cost.edp);
    }
    {
        SimulatedAnnealingMapper m;
        Rng rng(6);
        results.push_back(
            m.search(space, eval, budget, rng).best_cost.edp);
    }
    {
        HillClimbMapper m;
        Rng rng(7);
        results.push_back(
            m.search(space, eval, budget, rng).best_cost.edp);
    }
    const double best = *std::min_element(results.begin(), results.end());
    for (double r : results)
        EXPECT_LE(r, best * 3.0); // all within 3x of the group best
}

TEST(Integration, ObjectiveAwareEngineRunThroughPublicApi)
{
    // Latency-objective MSE through the engine's custom-evaluator path.
    const Workload wl = resnetConv3();
    const ArchConfig arch = accelB();
    MseEngine engine(arch);
    MapSpace space(wl, arch);
    EvalFn base = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    const EvalFn eval =
        makeObjectiveEvaluator(base, Objective::Latency);
    GammaConfig cfg;
    cfg.multi_objective = false;
    GammaMapper gamma(cfg);
    MseOptions opts;
    opts.budget.max_samples = 1000;
    Rng rng(8);
    const MseOutcome out =
        engine.optimizeWithEvaluator(space, eval, gamma, opts, rng);
    ASSERT_TRUE(out.search.found());
    // A latency-optimized mapping should achieve high utilization.
    const CostResult truth =
        CostModel::evaluate(wl, arch, out.search.best_mapping);
    EXPECT_GT(truth.utilization, 0.5);
}

TEST(Integration, SearchResultsAreReproducibleAcrossRuns)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    EvalFn eval = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    auto runOnce = [&]() {
        GammaMapper gamma;
        SearchBudget budget;
        budget.max_samples = 800;
        Rng rng(99);
        return gamma.search(space, eval, budget, rng).best_cost.edp;
    };
    EXPECT_DOUBLE_EQ(runOnce(), runOnce());
}

TEST(Integration, AnalysisNamesTheOptimizedDataflow)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    EvalFn eval = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    GammaMapper gamma;
    SearchBudget budget;
    budget.max_samples = 1500;
    Rng rng(10);
    const SearchResult r = gamma.search(space, eval, budget, rng);
    ASSERT_TRUE(r.found());
    // Whatever bucket wins, the classifier must return a printable name
    // and the intensity must be meaningful.
    const Stationarity s = classifyStationarity(wl, r.best_mapping);
    EXPECT_NE(stationarityName(s), nullptr);
    EXPECT_GT(arithmeticIntensity(wl, arch, r.best_mapping), 1.0);
}

} // namespace
} // namespace mse

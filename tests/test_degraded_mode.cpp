/**
 * @file
 * Graceful degradation under injected disk failures: the MappingStore
 * flips to read-only (in-memory bests keep serving) instead of
 * erroring out, the service keeps answering searches and surfaces the
 * degradation in stats/metrics, and tryRecover() returns the store to
 * disk once the fault clears. Faults are injected programmatically
 * through the process-global FaultInjector (the same machinery
 * MSE_FAULTS configures).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/fault_injection.hpp"
#include "service/mapping_store.hpp"
#include "service/service.hpp"
#include "test_helpers.hpp"

namespace mse {
namespace {

using test::miniNpu;
using test::tinyGemm;

/** Arms the global injector for one test, disarming on scope exit so
 *  a failing assertion cannot leak faults into later tests. */
class GlobalFaultGuard
{
  public:
    explicit GlobalFaultGuard(const std::string &config)
    {
        std::string err;
        EXPECT_TRUE(FaultInjector::global().configure(config, &err))
            << err;
    }
    ~GlobalFaultGuard() { FaultInjector::global().clear(); }
};

/** Per-test store path; TempDir() persists across runs, so drop any
 *  leftover file from a previous run to keep the tests hermetic. */
std::string
tempStorePath(const char *tag)
{
    const std::string path =
        testing::TempDir() + "/mse_degraded_" + tag + ".jsonl";
    std::remove(path.c_str());
    return path;
}

bool
record(MappingStore &store, const Workload &wl, const ArchConfig &arch,
       double score)
{
    return store.recordIfBetter(wl, arch, Objective::Edp,
                                /*sparse=*/false,
                                test::allAtTop(wl, arch), score,
                                /*energy_uj=*/1.0,
                                /*latency_cycles=*/score,
                                /*samples=*/10);
}

TEST(MappingStoreDegraded, InjectedEnospcFlipsReadOnlyNotBroken)
{
    const std::string path = tempStorePath("enospc");
    MappingStore store(path);
    ASSERT_FALSE(store.degraded());

    const Workload wl = tinyGemm();
    const ArchConfig arch = miniNpu();
    {
        GlobalFaultGuard guard("store.append:every:1:ENOSPC");
        // The in-memory update still happens (and reports true); only
        // the disk write is lost.
        EXPECT_TRUE(record(store, wl, arch, 100.0));
        EXPECT_TRUE(store.degraded());
        EXPECT_EQ(store.appendFailures(), 1u);
    }
    // Lookups keep answering from memory while degraded.
    const auto lk = store.lookup(wl, arch, Objective::Edp, false, 1.0);
    EXPECT_EQ(lk.hit, StoreHit::Exact);
    EXPECT_EQ(lk.entry.score, 100.0);
    EXPECT_EQ(store.size(), 1u);

    // Nothing reached the disk: a fresh store sees an empty file.
    MappingStore reread(path);
    EXPECT_EQ(reread.size(), 0u);
}

TEST(MappingStoreDegraded, DegradedStoreKeepsImprovingInMemory)
{
    const std::string path = tempStorePath("improve");
    MappingStore store(path);
    const Workload wl = tinyGemm();
    const ArchConfig arch = miniNpu();

    GlobalFaultGuard guard("store.append:every:1:ENOSPC");
    EXPECT_TRUE(record(store, wl, arch, 100.0));
    ASSERT_TRUE(store.degraded());
    // Degraded mode stops hammering the disk but not the in-memory
    // bests: a better score still wins (and a worse one still loses).
    EXPECT_TRUE(record(store, wl, arch, 50.0));
    EXPECT_FALSE(record(store, wl, arch, 80.0));
    const auto lk = store.lookup(wl, arch, Objective::Edp, false, 1.0);
    EXPECT_EQ(lk.entry.score, 50.0);
    EXPECT_GE(store.appendFailures(), 2u);
}

TEST(MappingStoreDegraded, TryRecoverRewritesFromMemory)
{
    const std::string path = tempStorePath("recover");
    MappingStore store(path);
    const Workload wl = tinyGemm();
    const ArchConfig arch = miniNpu();
    {
        // Recovery writes go through the compaction path, so a disk
        // that still fails there must keep the store degraded.
        GlobalFaultGuard guard("store.append:every:1:ENOSPC,"
                               "store.compact:every:1:ENOSPC");
        EXPECT_TRUE(record(store, wl, arch, 100.0));
        ASSERT_TRUE(store.degraded());
        EXPECT_FALSE(store.tryRecover());
        EXPECT_TRUE(store.degraded());
    }
    // Fault gone: recovery rewrites the file from the in-memory
    // superset and re-arms appends.
    EXPECT_TRUE(store.tryRecover());
    EXPECT_FALSE(store.degraded());
    MappingStore reread(path);
    EXPECT_EQ(reread.size(), 1u);
    const auto lk = reread.lookup(wl, arch, Objective::Edp, false, 1.0);
    EXPECT_EQ(lk.hit, StoreHit::Exact);
    EXPECT_EQ(lk.entry.score, 100.0);
}

TEST(MappingStoreDegraded, UnreadableFileAtLoadServesEmptyReadOnly)
{
    // EIO on the very first open: the store must come up (empty,
    // degraded) rather than throw — and must not append to a file it
    // never managed to read.
    const std::string path = tempStorePath("unreadable");
    GlobalFaultGuard guard("store.open:every:1:EIO");
    MappingStore store(path);
    EXPECT_TRUE(store.degraded());
    EXPECT_EQ(store.size(), 0u);
    EXPECT_TRUE(record(store, tinyGemm(), miniNpu(), 100.0));
    EXPECT_GE(store.appendFailures(), 1u);
}

TEST(MappingStoreDegraded, MidFileReadFailureKeepsPrefixReadOnly)
{
    // The file opens fine but read(2) fails mid-load: appending after
    // an unknown suffix could shadow records we never saw, so the
    // store keeps whatever prefix parsed and goes read-only.
    const std::string path = tempStorePath("readfail");
    {
        MappingStore writer(path);
        EXPECT_TRUE(record(writer, tinyGemm(), miniNpu(), 100.0));
    }
    GlobalFaultGuard guard("store.read:every:1:EIO");
    MappingStore store(path);
    EXPECT_TRUE(store.degraded());
    EXPECT_EQ(store.size(), 0u); // First read failed: empty prefix.
}

TEST(MappingStoreDegraded, FsyncFailureDegradesDurableStore)
{
    // With fsync_each on, a failed fsync means the record may not be
    // durable even though write(2) succeeded — that counts as an
    // append failure and flips the store read-only.
    const std::string path = tempStorePath("fsyncfail");
    MappingStore store(path, /*fsync_each=*/true);
    {
        GlobalFaultGuard guard("store.fsync:once:1:EIO");
        EXPECT_TRUE(record(store, tinyGemm(), miniNpu(), 100.0));
        EXPECT_TRUE(store.degraded());
        EXPECT_EQ(store.appendFailures(), 1u);
        EXPECT_EQ(FaultInjector::global().injected("store.fsync"), 1u);
    }
    // The in-memory best still serves.
    const auto lk =
        store.lookup(tinyGemm(), miniNpu(), Objective::Edp, false, 1.0);
    EXPECT_EQ(lk.hit, StoreHit::Exact);
}

TEST(MappingStoreDegraded, RenameFailureLeavesCompactionUnapplied)
{
    // Compaction's final rename fails (and so does the cleanup
    // unlink): the original file must remain the authoritative copy,
    // and a clean retry must succeed.
    const std::string path = tempStorePath("renamefail");
    MappingStore store(path);
    const Workload wl = tinyGemm();
    const ArchConfig arch = miniNpu();
    EXPECT_TRUE(record(store, wl, arch, 100.0));
    EXPECT_TRUE(record(store, wl, arch, 50.0)); // Supersedes: 1 dead line.
    {
        GlobalFaultGuard guard("store.rename:once:1:EIO,"
                               "store.unlink:every:1:EIO");
        EXPECT_FALSE(store.compact());
        EXPECT_EQ(FaultInjector::global().injected("store.rename"), 1u);
        EXPECT_EQ(FaultInjector::global().injected("store.unlink"), 1u);
    }
    // The two-line append log is untouched and still parses.
    MappingStore reread(path);
    EXPECT_EQ(reread.size(), 1u);
    EXPECT_EQ(reread.deadLines(), 1u);
    const auto lk = reread.lookup(wl, arch, Objective::Edp, false, 1.0);
    EXPECT_EQ(lk.entry.score, 50.0);
    // Fault gone: the retry compacts away the superseded line.
    EXPECT_TRUE(store.compact());
    MappingStore compacted(path);
    EXPECT_EQ(compacted.size(), 1u);
    EXPECT_EQ(compacted.deadLines(), 0u);
}

TEST(ServiceDegraded, SearchesKeepAnsweringWithDegradedStore)
{
    ServiceConfig cfg;
    cfg.store_path = tempStorePath("service");

    GlobalFaultGuard guard("store.append:every:1:ENOSPC");
    MseService service(cfg);

    SearchRequest req;
    req.workload = makeGemm("degraded_gemm", 8, 64, 64, 64);
    req.arch = miniNpu();
    req.max_samples = 300;

    // First search: the write-back fails, the store degrades, the
    // reply is still a full answer.
    const SearchReply cold = service.search(req);
    ASSERT_TRUE(cold.ok) << cold.error_code << ": "
                         << cold.error_message;
    EXPECT_EQ(cold.store_hit, StoreHit::Miss);

    // Second search: warm-started from the *in-memory* best — the
    // degraded disk costs persistence, not warm starts.
    const SearchReply warm = service.search(req);
    ASSERT_TRUE(warm.ok);
    EXPECT_EQ(warm.store_hit, StoreHit::Exact);

    const JsonValue stats = service.statsJson();
    const JsonValue *store = stats.find("store");
    ASSERT_NE(store, nullptr);
    EXPECT_TRUE(store->getBool("degraded", false));
    EXPECT_GE(store->getInt("append_failures", 0), 1);
    // The degradation transition is a counted metrics event (once,
    // not once per search).
    EXPECT_EQ(store->getInt("degraded_events", 0), 1);
    // Fault-armed runs self-identify in stats.
    const JsonValue *faults = stats.find("faults");
    ASSERT_NE(faults, nullptr);
    EXPECT_TRUE(faults->getBool("armed", false));
    EXPECT_GE(faults->getInt("injected_total", 0), 1);

    service.stop(true);
}

TEST(ServiceDegraded, HealthyServiceReportsNoDegradation)
{
    ServiceConfig cfg;
    cfg.store_path = tempStorePath("healthy");
    MseService service(cfg);

    SearchRequest req;
    req.workload = makeGemm("healthy_gemm", 8, 64, 64, 64);
    req.arch = miniNpu();
    req.max_samples = 300;
    ASSERT_TRUE(service.search(req).ok);

    const JsonValue stats = service.statsJson();
    const JsonValue *store = stats.find("store");
    ASSERT_NE(store, nullptr);
    EXPECT_FALSE(store->getBool("degraded", true));
    EXPECT_EQ(store->getInt("append_failures", -1), 0);
    EXPECT_EQ(store->getInt("degraded_events", -1), 0);
    // No faults armed -> no faults block at all.
    EXPECT_EQ(stats.find("faults"), nullptr);

    service.stop(true);
}

} // namespace
} // namespace mse

#include <gtest/gtest.h>

#include "common/pareto.hpp"

namespace mse {
namespace {

TEST(Dominates, StrictAndEqualCases)
{
    EXPECT_TRUE(dominates({1, 1}, {2, 2}));
    EXPECT_TRUE(dominates({1, 2}, {2, 2}));
    EXPECT_FALSE(dominates({1, 3}, {2, 2}));
    EXPECT_FALSE(dominates({2, 2}, {2, 2})); // equal: not strict
    EXPECT_FALSE(dominates({2, 2}, {1, 1}));
}

TEST(ParetoRanks, AllNondominated)
{
    const auto r = paretoRanks({{1, 3}, {2, 2}, {3, 1}});
    EXPECT_EQ(r, (std::vector<int>{0, 0, 0}));
}

TEST(ParetoRanks, LayeredFronts)
{
    // (1,1) dominates everything; (2,2) dominates (3,3).
    const auto r = paretoRanks({{1, 1}, {2, 2}, {3, 3}});
    EXPECT_EQ(r, (std::vector<int>{0, 1, 2}));
}

TEST(ParetoRanks, MixedFront)
{
    const auto r = paretoRanks({{1, 4}, {4, 1}, {2, 2}, {3, 3}});
    EXPECT_EQ(r[0], 0);
    EXPECT_EQ(r[1], 0);
    EXPECT_EQ(r[2], 0);
    EXPECT_EQ(r[3], 1);
}

TEST(ParetoArchive, InsertKeepsNondominated)
{
    ParetoArchive a;
    EXPECT_TRUE(a.insert(1, 4, 0));
    EXPECT_TRUE(a.insert(4, 1, 1));
    EXPECT_TRUE(a.insert(2, 2, 2));
    EXPECT_EQ(a.entries().size(), 3u);
}

TEST(ParetoArchive, RejectsDominated)
{
    ParetoArchive a;
    a.insert(1, 1, 0);
    EXPECT_FALSE(a.insert(2, 2, 1));
    EXPECT_FALSE(a.insert(1, 1, 2)); // duplicate point is not an improvement
    EXPECT_EQ(a.entries().size(), 1u);
}

TEST(ParetoArchive, EvictsNewlyDominated)
{
    ParetoArchive a;
    a.insert(3, 3, 0);
    a.insert(2, 4, 1);
    EXPECT_TRUE(a.insert(1, 1, 2)); // dominates both
    ASSERT_EQ(a.entries().size(), 1u);
    EXPECT_EQ(a.entries()[0].payload, 2u);
}

TEST(ParetoArchive, BestEdp)
{
    ParetoArchive a;
    EXPECT_EQ(a.bestEdpIndex(), -1);
    a.insert(1, 8, 0); // EDP 8
    a.insert(2, 3, 1); // EDP 6 <- best
    a.insert(6, 1, 2); // EDP 6 tie, first wins
    const int best = a.bestEdpIndex();
    ASSERT_GE(best, 0);
    EXPECT_EQ(a.entries()[static_cast<size_t>(best)].payload, 1u);
}

} // namespace
} // namespace mse

/**
 * @file
 * Tests for the work-queue thread pool behind batched evaluation.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <vector>

#include "common/thread_pool.hpp"

namespace mse {
namespace {

TEST(ThreadPool, SerialPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::vector<int> order;
    pool.parallelFor(8, [&](size_t i) {
        order.push_back(static_cast<int>(i));
    });
    // Size-1 pools run the loop inline, in index order, on this thread.
    std::vector<int> expect(8);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    const size_t n = 1000;
    std::vector<std::atomic<int>> counts(n);
    pool.parallelFor(n, [&](size_t i) {
        counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossManyJobs)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<size_t> sum{0};
        const size_t n = 1 + static_cast<size_t>(round) * 7 % 97;
        pool.parallelFor(n, [&](size_t i) {
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
    }
}

TEST(ThreadPool, EmptyAndSingleItemJobs)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(0, [&](size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
    pool.parallelFor(1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, PoolWiderThanJobStillRunsEveryIndexOnce)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> counts(3);
    pool.parallelFor(3, [&](size_t i) { counts[i].fetch_add(1); });
    for (auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    // A parallelFor issued from inside a task must fall back to an
    // inline loop (this is what lets whole-layer sweep jobs nest over
    // the batched-evaluation layer without deadlocking the pool).
    ThreadPool pool(4);
    constexpr size_t kOuter = 8, kInner = 16;
    std::vector<std::atomic<int>> counts(kOuter * kInner);
    std::atomic<int> inline_inner{0};
    pool.parallelFor(kOuter, [&](size_t o) {
        EXPECT_TRUE(ThreadPool::inTask());
        pool.parallelFor(kInner, [&](size_t i) {
            if (ThreadPool::inTask())
                inline_inner.fetch_add(1);
            counts[o * kInner + i].fetch_add(1);
        });
    });
    for (auto &c : counts)
        ASSERT_EQ(c.load(), 1);
    // Every inner index ran in task context, i.e. inline.
    EXPECT_EQ(inline_inner.load(),
              static_cast<int>(kOuter * kInner));
    EXPECT_FALSE(ThreadPool::inTask());

    // The pool machinery must still be usable afterwards.
    std::atomic<int> calls{0};
    pool.parallelFor(32, [&](size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 32);
}

TEST(ThreadPool, NestedParallelForAcrossDistinctPoolsRunsInline)
{
    // Nesting across two different pools (global batch pool inside a
    // local sweep pool) takes the same inline path: the flag is
    // per-thread, not per-pool, because the inner pool's lanes are
    // already owned by the outer job's parallelism budget.
    ThreadPool outer(4), inner(4);
    std::atomic<int> ran{0};
    outer.parallelFor(4, [&](size_t) {
        inner.parallelFor(4, [&](size_t) { ran.fetch_add(1); });
    });
    EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, ConfiguredThreadsHonorsEnv)
{
    ::setenv("MSE_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::configuredThreads(), 3u);
    ::setenv("MSE_THREADS", "not-a-number", 1);
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
    ::setenv("MSE_THREADS", "100000", 1);
    EXPECT_EQ(ThreadPool::configuredThreads(), 256u);
    ::unsetenv("MSE_THREADS");
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
}

TEST(ThreadPool, GlobalPoolResizable)
{
    ThreadPool::setGlobalThreads(2);
    EXPECT_EQ(ThreadPool::global().threads(), 2u);
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(ThreadPool::global().threads(), 1u);
}

} // namespace
} // namespace mse

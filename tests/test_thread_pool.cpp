/**
 * @file
 * Tests for the work-queue thread pool behind batched evaluation.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <vector>

#include "common/thread_pool.hpp"

namespace mse {
namespace {

TEST(ThreadPool, SerialPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::vector<int> order;
    pool.parallelFor(8, [&](size_t i) {
        order.push_back(static_cast<int>(i));
    });
    // Size-1 pools run the loop inline, in index order, on this thread.
    std::vector<int> expect(8);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    const size_t n = 1000;
    std::vector<std::atomic<int>> counts(n);
    pool.parallelFor(n, [&](size_t i) {
        counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossManyJobs)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<size_t> sum{0};
        const size_t n = 1 + static_cast<size_t>(round) * 7 % 97;
        pool.parallelFor(n, [&](size_t i) {
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
    }
}

TEST(ThreadPool, EmptyAndSingleItemJobs)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(0, [&](size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
    pool.parallelFor(1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ConfiguredThreadsHonorsEnv)
{
    ::setenv("MSE_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::configuredThreads(), 3u);
    ::setenv("MSE_THREADS", "not-a-number", 1);
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
    ::setenv("MSE_THREADS", "100000", 1);
    EXPECT_EQ(ThreadPool::configuredThreads(), 256u);
    ::unsetenv("MSE_THREADS");
    EXPECT_GE(ThreadPool::configuredThreads(), 1u);
}

TEST(ThreadPool, GlobalPoolResizable)
{
    ThreadPool::setGlobalThreads(2);
    EXPECT_EQ(ThreadPool::global().threads(), 2u);
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(ThreadPool::global().threads(), 1u);
}

} // namespace
} // namespace mse

#include <gtest/gtest.h>

#include "model/cost_model.hpp"
#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

TEST(NocHops, BusIsAlwaysOneHop)
{
    EXPECT_DOUBLE_EQ(nocHops(NocTopology::Bus, 1), 1.0);
    EXPECT_DOUBLE_EQ(nocHops(NocTopology::Bus, 256), 1.0);
}

TEST(NocHops, TreeIsLogarithmic)
{
    EXPECT_DOUBLE_EQ(nocHops(NocTopology::Tree, 1), 1.0);
    EXPECT_DOUBLE_EQ(nocHops(NocTopology::Tree, 16), 5.0);
    EXPECT_DOUBLE_EQ(nocHops(NocTopology::Tree, 256), 9.0);
}

TEST(NocHops, MeshIsSquareRoot)
{
    EXPECT_DOUBLE_EQ(nocHops(NocTopology::Mesh, 1), 1.0);
    EXPECT_DOUBLE_EQ(nocHops(NocTopology::Mesh, 256), 16.0);
}

TEST(NocHops, MeshExceedsTreeAtScale)
{
    EXPECT_GT(nocHops(NocTopology::Mesh, 1024),
              nocHops(NocTopology::Tree, 1024));
}

TEST(NocTopologyName, AllNamed)
{
    EXPECT_STREQ(nocTopologyName(NocTopology::Bus), "bus");
    EXPECT_STREQ(nocTopologyName(NocTopology::Tree), "tree");
    EXPECT_STREQ(nocTopologyName(NocTopology::Mesh), "mesh");
}

TEST(NocEnergy, ZeroHopEnergyLeavesCostUnchanged)
{
    // The presets ship with noc_hop_energy_pj = 0: identical results.
    const Workload wl = resnetConv4();
    ArchConfig a = accelB();
    ArchConfig b = accelB();
    b.levels[1].noc = NocTopology::Mesh; // topology alone is free
    MapSpace space(wl, a);
    Rng rng(1);
    const Mapping m = space.randomMapping(rng);
    EXPECT_DOUBLE_EQ(CostModel::evaluate(wl, a, m).edp,
                     CostModel::evaluate(wl, b, m).edp);
}

TEST(NocEnergy, HopEnergyRaisesTotalEnergy)
{
    const Workload wl = resnetConv4();
    ArchConfig base = accelB();
    ArchConfig noc = accelB();
    for (auto &lvl : noc.levels)
        lvl.noc_hop_energy_pj = 0.1;
    MapSpace space(wl, base);
    Rng rng(2);
    const Mapping m = space.randomMapping(rng);
    const CostResult rb = CostModel::evaluate(wl, base, m);
    const CostResult rn = CostModel::evaluate(wl, noc, m);
    EXPECT_GT(rn.energy_uj, rb.energy_uj);
    // Latency is unaffected (energy-only model).
    EXPECT_DOUBLE_EQ(rn.latency_cycles, rb.latency_cycles);
}

TEST(NocEnergy, MeshCostsMoreThanBusAtHighFanout)
{
    const Workload wl = resnetConv4();
    auto archWith = [](NocTopology t) {
        ArchConfig cfg = accelB();
        cfg.levels[1].noc = t; // PE-array network
        cfg.levels[1].noc_hop_energy_pj = 0.2;
        return cfg;
    };
    const ArchConfig bus = archWith(NocTopology::Bus);
    const ArchConfig mesh = archWith(NocTopology::Mesh);
    MapSpace space(wl, bus);
    Rng rng(3);
    // Use a mapping that actually spreads across PEs.
    Mapping m = space.randomMapping(rng);
    while (m.spatialProduct(1) < 8)
        m = space.randomMapping(rng);
    EXPECT_GT(CostModel::evaluate(wl, mesh, m).energy_uj,
              CostModel::evaluate(wl, bus, m).energy_uj);
}

TEST(NocEnergy, ScalesWithActiveFanoutNotRatedFanout)
{
    // A mapping using one PE pays one hop worth even on a mesh.
    const Workload wl = test::tinyGemm();
    ArchConfig arch = makeNpu("n", 1 << 16, 1 << 12, 64, 1);
    arch.levels[1].noc = NocTopology::Mesh;
    arch.levels[1].noc_hop_energy_pj = 1.0;
    Mapping m(arch.numLevels(), wl.numDims());
    for (int d = 0; d < wl.numDims(); ++d)
        m.level(2).temporal[d] = wl.bound(d);
    ASSERT_EQ(validateMapping(wl, arch, m), MappingError::Ok);
    ArchConfig free_arch = arch;
    free_arch.levels[1].noc_hop_energy_pj = 0.0;
    const double with_noc = CostModel::evaluate(wl, arch, m).energy_uj;
    const double without = CostModel::evaluate(wl, free_arch, m).energy_uj;
    // Exactly one hop per L2 read word (spatial product is 1).
    const AccessCounts c = computeAccessCounts(wl, arch, m);
    double l2_reads = 0;
    for (int t = 0; t < wl.numTensors(); ++t)
        l2_reads += c.access[1][t].reads;
    EXPECT_NEAR(with_noc - without, l2_reads * 1.0 * 1e-6,
                1e-12 + 1e-9 * with_noc);
}

} // namespace
} // namespace mse

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace mse {
namespace {

TEST(Divisors, OfOne)
{
    EXPECT_EQ(divisorsOf(1), (std::vector<int64_t>{1}));
}

TEST(Divisors, OfPrime)
{
    EXPECT_EQ(divisorsOf(13), (std::vector<int64_t>{1, 13}));
}

TEST(Divisors, OfCompositeSortedAndComplete)
{
    const auto d = divisorsOf(36);
    EXPECT_EQ(d, (std::vector<int64_t>{1, 2, 3, 4, 6, 9, 12, 18, 36}));
    EXPECT_TRUE(std::is_sorted(d.begin(), d.end()));
}

TEST(Divisors, PerfectSquareNoDuplicateRoot)
{
    const auto d = divisorsOf(16);
    EXPECT_EQ(d, (std::vector<int64_t>{1, 2, 4, 8, 16}));
}

TEST(NearestDivisor, ExactHit)
{
    EXPECT_EQ(nearestDivisor(24, 6), 6);
}

TEST(NearestDivisor, RoundsToClosest)
{
    EXPECT_EQ(nearestDivisor(24, 5), 4); // tie 4 vs 6 resolves low
    EXPECT_EQ(nearestDivisor(24, 7), 6);
    EXPECT_EQ(nearestDivisor(24, 100), 24);
    EXPECT_EQ(nearestDivisor(24, 0), 1);
}

TEST(NearestDivisor, PrimeBound)
{
    EXPECT_EQ(nearestDivisor(7, 3), 1);
    EXPECT_EQ(nearestDivisor(7, 5), 7);
}

TEST(CountOrderedFactorizations, MatchesEnumerationSmall)
{
    for (int64_t n : {1, 2, 6, 12, 16, 28, 36, 49}) {
        for (int k : {1, 2, 3, 4}) {
            const auto enumerated = enumerateOrderedFactorizations(n, k);
            EXPECT_DOUBLE_EQ(countOrderedFactorizations(n, k),
                             static_cast<double>(enumerated.size()))
                << "n=" << n << " k=" << k;
        }
    }
}

TEST(CountOrderedFactorizations, KnownValues)
{
    // 12 = 2^2 * 3 into 2 factors: C(3,1)*C(2,1) = 6.
    EXPECT_DOUBLE_EQ(countOrderedFactorizations(12, 2), 6.0);
    // Identity cases.
    EXPECT_DOUBLE_EQ(countOrderedFactorizations(1, 3), 1.0);
    EXPECT_DOUBLE_EQ(countOrderedFactorizations(97, 1), 1.0);
}

TEST(EnumerateOrderedFactorizations, ProductsAreCorrect)
{
    for (const auto &f : enumerateOrderedFactorizations(24, 3)) {
        ASSERT_EQ(f.size(), 3u);
        EXPECT_EQ(f[0] * f[1] * f[2], 24);
    }
}

TEST(EnumerateOrderedFactorizations, NoDuplicates)
{
    auto all = enumerateOrderedFactorizations(30, 3);
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

class SampleFactorizationP : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(SampleFactorizationP, ProductEqualsInput)
{
    Rng rng(42);
    const int64_t n = GetParam();
    for (int k = 1; k <= 6; ++k) {
        for (int trial = 0; trial < 32; ++trial) {
            const auto f = sampleFactorization(n, k, rng);
            ASSERT_EQ(static_cast<int>(f.size()), k);
            int64_t p = 1;
            for (int64_t v : f) {
                EXPECT_GE(v, 1);
                p *= v;
            }
            EXPECT_EQ(p, n);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, SampleFactorizationP,
                         ::testing::Values<int64_t>(1, 2, 7, 16, 28, 224,
                                                    256, 1024));

TEST(SampleFactorization, CoversNontrivialSplits)
{
    Rng rng(7);
    bool saw_split = false;
    for (int i = 0; i < 100 && !saw_split; ++i) {
        const auto f = sampleFactorization(16, 3, rng);
        if (f[0] > 1 && f[1] > 1)
            saw_split = true;
    }
    EXPECT_TRUE(saw_split);
}

TEST(Gcd64, Basics)
{
    EXPECT_EQ(gcd64(12, 18), 6);
    EXPECT_EQ(gcd64(7, 13), 1);
    EXPECT_EQ(gcd64(0, 5), 5);
    EXPECT_EQ(gcd64(5, 0), 5);
    EXPECT_EQ(gcd64(-12, 18), 6);
}

TEST(CeilDiv, Basics)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(1, 5), 1);
}

TEST(Log10OfProduct, SumsLogs)
{
    EXPECT_NEAR(log10OfProduct({10.0, 100.0}), 3.0, 1e-12);
    EXPECT_NEAR(log10OfProduct({}), 0.0, 1e-12);
}

} // namespace
} // namespace mse

/**
 * @file
 * Bit-identity proofs for the planned evaluation pipeline.
 *
 * The EvalPlan/SoA/incremental paths promise results bit-identical to
 * CostModel::evaluate for every mapping, valid or not. These tests
 * enforce that promise the same way the golden traces do — through the
 * %.17g rendering that round-trips IEEE-754 doubles — across large
 * randomized mapping populations (including corrupted ones that hit
 * every validation error), GA offspring (mutate-tile, mutate-order,
 * crossover), and whole engine searches with the incremental path
 * toggled on and off.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/mse_engine.hpp"
#include "mappers/gamma.hpp"
#include "mappers/standard_ga.hpp"
#include "mapping/map_space.hpp"
#include "model/batch_eval.hpp"
#include "model/cost_model.hpp"
#include "model/eval_plan.hpp"
#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

/** Exact decimal rendering that round-trips IEEE-754 doubles. */
std::string
g17(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Render every field of a CostResult for bitwise comparison. */
std::string
render(const CostResult &c)
{
    std::string s;
    s += c.valid ? "valid" : "invalid";
    s += " err=" + std::to_string(static_cast<int>(c.error));
    s += " lat=" + g17(c.latency_cycles);
    s += " e=" + g17(c.energy_uj);
    s += " edp=" + g17(c.edp);
    s += " cc=" + g17(c.compute_cycles);
    s += " util=" + g17(c.utilization);
    s += " macs=" + g17(c.macs);
    s += " le=[";
    for (double v : c.level_energy_uj)
        s += g17(v) + ",";
    s += "] lc=[";
    for (double v : c.level_cycles)
        s += g17(v) + ",";
    s += "]";
    return s;
}

/**
 * A randomized population that exercises every validation stage:
 * mostly space-legal mappings, spiced with corrupted ones (bad factor
 * products, zero factors, broken permutations, dropped DRAM
 * residency) so the error paths differ too.
 */
std::vector<Mapping>
randomizedPopulation(const MapSpace &space, size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Mapping> pop;
    pop.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        Mapping m = space.randomMapping(rng);
        const int L = m.numLevels();
        const int D = static_cast<int>(m.level(0).temporal.size());
        switch (i % 17) {
        case 3: // break the per-dimension factor product
            m.level(static_cast<int>(rng.index(L)))
                .temporal[rng.index(D)] += 1;
            break;
        case 5: // zero factor (factors-below-one error)
            m.level(static_cast<int>(rng.index(L)))
                .spatial[rng.index(D)] = 0;
            break;
        case 7: { // duplicate order entry (broken permutation)
            auto &ord = m.level(static_cast<int>(rng.index(L))).order;
            ord[0] = ord[D - 1];
            break;
        }
        case 11: // out-of-range order entry
            m.level(static_cast<int>(rng.index(L))).order[0] = D + 3;
            break;
        case 13: // DRAM must keep every tensor
            if (!m.level(L - 1).keep.empty())
                m.level(L - 1).keep[0] = 0;
            break;
        default:
            break; // space-legal (may still exceed capacity/fanout)
        }
        pop.push_back(std::move(m));
    }
    return pop;
}

struct Triple
{
    const char *name;
    Workload wl;
    ArchConfig arch;
};

std::vector<Triple>
triples()
{
    return {
        {"resnet_conv4/accelB", resnetConv4(), accelB()},
        {"bert_kqv/accelA", bertKqv(), accelA()},
        {"tiny_conv/mini_npu", test::tinyConv(), test::miniNpu()},
    };
}

// Tentpole acceptance: >= 10k randomized mappings per (workload, arch)
// triple, scalar vs planned vs SoA, %.17g-identical on every field.
TEST(EvalPlanDifferential, ScalarPlannedAndSoAAgreeOnRandomMappings)
{
    constexpr size_t kMappings = 10000;
    constexpr size_t kBatch = 64;
    for (const Triple &tr : triples()) {
        MapSpace space(tr.wl, tr.arch);
        const std::vector<Mapping> pop =
            randomizedPopulation(space, kMappings, 0xfeed);
        const EvalPlan plan = EvalPlan::build(tr.wl, tr.arch);
        EvalScratch scratch;
        std::vector<CostResult> soa(pop.size());
        for (size_t i = 0; i < pop.size(); i += kBatch) {
            const size_t k = std::min(kBatch, pop.size() - i);
            evaluateBatchSoA(
                plan, std::span<const Mapping>(pop.data() + i, k),
                std::span<CostResult>(soa.data() + i, k));
        }
        size_t invalid = 0;
        for (size_t i = 0; i < pop.size(); ++i) {
            const CostResult scalar =
                CostModel::evaluate(tr.wl, tr.arch, pop[i]);
            CostResult planned;
            evaluatePlanned(plan, pop[i], scratch, planned);
            const std::string want = render(scalar);
            ASSERT_EQ(want, render(planned))
                << tr.name << " planned mismatch at mapping " << i;
            ASSERT_EQ(want, render(soa[i]))
                << tr.name << " SoA mismatch at mapping " << i;
            if (!scalar.valid)
                ++invalid;
        }
        // The population must actually exercise both sides.
        EXPECT_GT(invalid, kMappings / 20) << tr.name;
        EXPECT_GT(pop.size() - invalid, kMappings / 20) << tr.name;
    }
}

// The incremental path must be bit-identical whenever it claims to
// handle a child, across all three GA operators, and must actually
// fire (otherwise the test proves nothing).
TEST(EvalPlanDifferential, IncrementalMatchesFullOnGaOffspring)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    const EvalPlan plan = EvalPlan::build(wl, arch);
    EvalScratch scratch;
    Rng rng(0xabcd);

    // Collect valid parents with their access rows.
    std::vector<Mapping> parents;
    std::vector<std::vector<TensorLevelAccess>> parent_rows;
    while (parents.size() < 40) {
        Mapping m = space.randomMapping(rng);
        CostResult c;
        std::vector<TensorLevelAccess> rows;
        evaluatePlanned(plan, m, scratch, c, &rows);
        if (c.valid) {
            parents.push_back(std::move(m));
            parent_rows.push_back(std::move(rows));
        }
    }

    size_t handled = 0, total = 0;
    const auto check = [&](const Mapping &child, size_t p) {
        ++total;
        CostResult full;
        std::vector<TensorLevelAccess> full_rows;
        evaluatePlanned(plan, child, scratch, full, &full_rows);
        CostResult inc;
        std::vector<TensorLevelAccess> inc_rows;
        if (evaluateIncremental(plan, child, parents[p],
                                parent_rows[p].data(), scratch, inc,
                                &inc_rows)) {
            ++handled;
            ASSERT_EQ(render(full), render(inc));
            if (full.valid) {
                ASSERT_EQ(full_rows.size(), inc_rows.size());
                for (size_t r = 0; r < full_rows.size(); ++r) {
                    ASSERT_EQ(g17(full_rows[r].reads),
                              g17(inc_rows[r].reads));
                    ASSERT_EQ(g17(full_rows[r].writes),
                              g17(inc_rows[r].writes));
                }
            }
        }
    };

    for (size_t p = 0; p < parents.size(); ++p) {
        for (int i = 0; i < 30; ++i) {
            Mapping child = parents[p];
            GammaMapper::mutateTile(space, child, rng);
            space.repair(child);
            check(child, p);
        }
        for (int i = 0; i < 30; ++i) {
            Mapping child = parents[p];
            GammaMapper::mutateOrder(child, rng);
            check(child, p);
        }
        for (int i = 0; i < 30; ++i) {
            const size_t q = rng.index(parents.size());
            Mapping child =
                GammaMapper::crossover(parents[p], parents[q], rng);
            space.repair(child);
            check(child, p);
        }
    }
    // The delta prover is conservative, but it must not be vacuous.
    EXPECT_GT(handled, total / 10)
        << "incremental path almost never fires (" << handled << "/"
        << total << ")";
}

// rows_out is the payload incremental evaluation keys on; it must match
// the scalar traffic model exactly.
TEST(EvalPlanDifferential, RowsMatchComputeAccessCounts)
{
    const Workload wl = bertKqv();
    const ArchConfig arch = accelA();
    MapSpace space(wl, arch);
    const EvalPlan plan = EvalPlan::build(wl, arch);
    EvalScratch scratch;
    Rng rng(0x77);
    const int L = plan.L, T = plan.T;
    size_t checked = 0;
    for (int i = 0; i < 400 && checked < 50; ++i) {
        const Mapping m = space.randomMapping(rng);
        CostResult c;
        std::vector<TensorLevelAccess> rows;
        evaluatePlanned(plan, m, scratch, c, &rows);
        if (!c.valid)
            continue;
        ++checked;
        const AccessCounts counts = computeAccessCounts(wl, arch, m);
        ASSERT_EQ(rows.size(), static_cast<size_t>(L) * T);
        for (int l = 0; l < L; ++l) {
            for (int t = 0; t < T; ++t) {
                const TensorLevelAccess &got =
                    rows[static_cast<size_t>(l) * T + t];
                const TensorLevelAccess &want = counts.access[l][t];
                ASSERT_EQ(g17(want.reads), g17(got.reads));
                ASSERT_EQ(g17(want.writes), g17(got.writes));
            }
        }
    }
    EXPECT_GE(checked, 50u);
}

// The pipelined evaluator with parent hints must produce the same
// results as the hint-free SoA kernel.
TEST(EvalPlanDifferential, PipelineWithHintsMatchesSoA)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(0x2024);

    std::vector<Mapping> parents;
    for (int i = 0; i < 16; ++i)
        parents.push_back(space.randomMapping(rng));
    std::vector<Mapping> batch = parents;
    std::vector<EvalHint> hints(parents.size());
    for (size_t i = 0; i < parents.size(); ++i) {
        Mapping child = parents[i];
        GammaMapper::mutateTile(space, child, rng);
        space.repair(child);
        batch.push_back(std::move(child));
        hints.push_back(EvalHint{&parents[i]});
    }

    BatchCostEvaluator::Options opts;
    opts.use_cache = true;
    opts.use_incremental = true;
    BatchCostEvaluator pipeline(wl, arch, opts);
    std::vector<CostResult> got(batch.size());
    pipeline.evaluateBatch(batch.data(), hints.data(), batch.size(),
                           got.data());

    const EvalPlan plan = EvalPlan::build(wl, arch);
    std::vector<CostResult> want(batch.size());
    evaluateBatchSoA(plan, batch, want);
    for (size_t i = 0; i < batch.size(); ++i)
        ASSERT_EQ(render(want[i]), render(got[i])) << "candidate " << i;

    // Re-evaluating the same batch must be served from the store with
    // identical results.
    std::vector<CostResult> again(batch.size());
    pipeline.evaluateBatch(batch.data(), hints.data(), batch.size(),
                           again.data());
    for (size_t i = 0; i < batch.size(); ++i)
        ASSERT_EQ(render(want[i]), render(again[i]));
    EXPECT_GT(pipeline.cacheHits(), 0u);
}

/** One full engine search; returns the log + best for comparison. */
std::string
searchFingerprint(Mapper &mapper, const MseOptions &opts, uint64_t seed)
{
    MseEngine engine(accelB());
    Rng rng(seed);
    const MseOutcome out =
        engine.optimize(resnetConv4(), mapper, opts, rng);
    std::string s = render(out.search.best_cost);
    s += " samples=" + std::to_string(out.search.log.samples);
    for (double v : out.search.log.best_edp_per_sample)
        s += " " + g17(v);
    s += " pareto=" + std::to_string(out.pareto.entries().size());
    return s;
}

// Acceptance: Gamma and StandardGA searches are bit-identical with
// incremental re-evaluation on vs. off, and with the planned pipeline
// on vs. off.
TEST(EvalPlanDifferential, EngineSearchesBitIdenticalAcrossEvalPaths)
{
    const auto run = [&](bool use_plan, bool use_incremental,
                         bool gamma) {
        MseOptions opts;
        opts.budget.max_samples = 400;
        opts.use_eval_plan = use_plan;
        opts.use_incremental = use_incremental;
        opts.update_replay = false;
        if (gamma) {
            GammaMapper m;
            return searchFingerprint(m, opts, 99);
        }
        StandardGaMapper m;
        return searchFingerprint(m, opts, 99);
    };
    for (const bool gamma : {true, false}) {
        const std::string plan_inc = run(true, true, gamma);
        const std::string plan_noinc = run(true, false, gamma);
        const std::string legacy = run(false, false, gamma);
        EXPECT_EQ(plan_inc, plan_noinc)
            << (gamma ? "gamma" : "standard-ga")
            << ": incremental on/off diverged";
        EXPECT_EQ(plan_inc, legacy)
            << (gamma ? "gamma" : "standard-ga")
            << ": planned pipeline vs legacy evaluator diverged";
    }
}

} // namespace
} // namespace mse

#include <gtest/gtest.h>

#include <limits>

#include "core/convergence.hpp"

namespace mse {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(IndexToConverge, EmptyTrace)
{
    EXPECT_EQ(indexToConverge({}), 0u);
}

TEST(IndexToConverge, FlatTraceConvergesImmediately)
{
    EXPECT_EQ(indexToConverge({5, 5, 5, 5}), 0u);
}

TEST(IndexToConverge, FindsFirstIndexMeetingFraction)
{
    // Improvement from 100 to 0; 99.5% target = 0.5.
    const std::vector<double> trace = {100, 50, 10, 0.4, 0.0};
    EXPECT_EQ(indexToConverge(trace, 0.995), 3u);
    EXPECT_EQ(indexToConverge(trace, 0.5), 1u);
    EXPECT_EQ(indexToConverge(trace, 0.90), 2u);
}

TEST(IndexToConverge, SkipsLeadingInfinities)
{
    const std::vector<double> trace = {kInf, kInf, 100, 1, 1};
    EXPECT_EQ(indexToConverge(trace, 0.995), 3u);
}

TEST(IndexToConverge, AllInfinite)
{
    const std::vector<double> trace = {kInf, kInf};
    EXPECT_EQ(indexToConverge(trace), 1u);
}

TEST(IndexToConverge, LastIndexWhenImprovementNeverReached)
{
    // Monotone traces always reach the target at the final index.
    const std::vector<double> trace = {10, 9, 8};
    EXPECT_LE(indexToConverge(trace, 0.995), 2u);
}

} // namespace
} // namespace mse

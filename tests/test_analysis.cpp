#include <gtest/gtest.h>

#include "mappers/gamma.hpp"
#include "model/analysis.hpp"
#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

using test::flatArch;
using test::tinyGemm;

/** GEMM mapping with a chosen innermost loop at L1. */
Mapping
gemmWithInnermost(const Workload &wl, const ArchConfig &arch,
                  const std::string &inner_dim)
{
    Mapping m(arch.numLevels(), wl.numDims());
    // Split every dim between L1 and DRAM so each level has real loops.
    for (int d = 0; d < wl.numDims(); ++d) {
        const int64_t b = wl.bound(d);
        const int64_t inner = b % 2 == 0 ? 2 : 1;
        m.level(0).temporal[d] = inner;
        m.level(arch.numLevels() - 1).temporal[d] = b / inner;
    }
    // Rotate the chosen dim to the innermost position at L1.
    auto &order = m.level(0).order;
    const int target = wl.dimIndex(inner_dim);
    for (size_t i = 0; i < order.size(); ++i) {
        if (order[i] == target) {
            order.erase(order.begin() + static_cast<long>(i));
            order.push_back(target);
            break;
        }
    }
    return m;
}

TEST(Stationarity, ReductionInnermostIsOutputStationary)
{
    // K innermost: the output element is held across the dot product.
    const Workload wl = makeGemm("g", 1, 8, 8, 8);
    const ArchConfig arch = flatArch();
    const Mapping m = gemmWithInnermost(wl, arch, "K");
    EXPECT_DOUBLE_EQ(reuseFactor(wl, m, wl.outputTensor(), 0), 2.0);
    EXPECT_EQ(classifyStationarity(wl, m), Stationarity::Output);
}

TEST(Stationarity, NInnermostIsInputStationary)
{
    // N is irrelevant to A (Inputs): A is held while N sweeps.
    const Workload wl = makeGemm("g", 1, 8, 8, 8);
    const ArchConfig arch = flatArch();
    const Mapping m = gemmWithInnermost(wl, arch, "N");
    EXPECT_EQ(classifyStationarity(wl, m), Stationarity::Input);
}

TEST(Stationarity, MInnermostIsWeightStationary)
{
    // M is irrelevant to W: weights are held while M sweeps.
    const Workload wl = makeGemm("g", 1, 8, 8, 8);
    const ArchConfig arch = flatArch();
    const Mapping m = gemmWithInnermost(wl, arch, "M");
    EXPECT_EQ(classifyStationarity(wl, m), Stationarity::Weight);
}

TEST(Stationarity, AllUnitLoopsHaveNoStationarity)
{
    const Workload wl = tinyGemm();
    Mapping m(2, wl.numDims());
    for (int d = 0; d < wl.numDims(); ++d)
        m.level(1).temporal[d] = wl.bound(d);
    // L1 has no non-unit loops at all.
    EXPECT_EQ(classifyStationarity(wl, m), Stationarity::None);
}

TEST(Stationarity, NamesAreHuman)
{
    EXPECT_STREQ(stationarityName(Stationarity::Weight),
                 "weight-stationary");
    EXPECT_STREQ(stationarityName(Stationarity::None),
                 "no-stationarity");
}

TEST(ReuseFactor, MultipliesConsecutiveIrrelevantLoops)
{
    // Two irrelevant loops inside the innermost relevant one compound.
    const Workload wl = makeGemm("g", 4, 4, 4, 4);
    const ArchConfig arch = flatArch();
    Mapping m(arch.numLevels(), wl.numDims());
    for (int d = 0; d < wl.numDims(); ++d)
        m.level(0).temporal[d] = wl.bound(d);
    // Order at L1: K, M, B, N -> for W[K,N]: after N (relevant,
    // innermost) nothing; reorder so irrelevant B,M are innermost:
    m.level(0).order = {wl.dimIndex("K"), wl.dimIndex("N"),
                        wl.dimIndex("B"), wl.dimIndex("M")};
    // W irrelevant to B and M: reuse = 4 * 4.
    EXPECT_DOUBLE_EQ(reuseFactor(wl, m, 1, 0), 16.0);
}

TEST(ArithmeticIntensity, BoundedByIdealReuse)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(5);
    // Ideal intensity: every word moves exactly once.
    double min_words = 0;
    for (int t = 0; t < wl.numTensors(); ++t)
        min_words += wl.tensorVolume(t);
    const double ideal = wl.totalMacs() / min_words;
    for (int i = 0; i < 30; ++i) {
        const double ai =
            arithmeticIntensity(wl, arch, space.randomMapping(rng));
        EXPECT_GT(ai, 0.0);
        EXPECT_LE(ai, ideal * 1.001);
    }
}

TEST(ArithmeticIntensity, OptimizedMappingsBeatRandomOnes)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(6);
    // Mean over random mappings...
    double random_ai = 0;
    for (int i = 0; i < 20; ++i) {
        random_ai +=
            arithmeticIntensity(wl, arch, space.randomMapping(rng)) / 20;
    }
    // ...vs a mapping optimized for EDP (which correlates with reuse).
    EvalFn eval = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    GammaMapper gamma;
    SearchBudget budget;
    budget.max_samples = 1500;
    const SearchResult r = gamma.search(space, eval, budget, rng);
    EXPECT_GT(arithmeticIntensity(wl, arch, r.best_mapping), random_ai);
}

} // namespace
} // namespace mse

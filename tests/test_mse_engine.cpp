#include <gtest/gtest.h>

#include "core/mse_engine.hpp"
#include "mappers/gamma.hpp"
#include "mappers/random_pruned.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

TEST(MseEngine, OptimizeReturnsLegalBest)
{
    MseEngine engine(accelB());
    GammaMapper gamma;
    MseOptions opts;
    opts.budget.max_samples = 600;
    Rng rng(1);
    const MseOutcome out = engine.optimize(resnetConv4(), gamma, opts,
                                           rng);
    ASSERT_TRUE(out.search.found());
    EXPECT_EQ(validateMapping(resnetConv4(), accelB(),
                              out.search.best_mapping),
              MappingError::Ok);
    EXPECT_GT(out.pareto.entries().size(), 0u);
}

TEST(MseEngine, ReplayBufferRecordsOutcomes)
{
    MseEngine engine(accelB());
    GammaMapper gamma;
    MseOptions opts;
    opts.budget.max_samples = 300;
    Rng rng(2);
    engine.optimize(resnetConv3(), gamma, opts, rng);
    engine.optimize(resnetConv4(), gamma, opts, rng);
    EXPECT_EQ(engine.replay().size(), 2u);
}

TEST(MseEngine, UpdateReplayCanBeDisabled)
{
    MseEngine engine(accelB());
    GammaMapper gamma;
    MseOptions opts;
    opts.budget.max_samples = 200;
    opts.update_replay = false;
    Rng rng(3);
    engine.optimize(resnetConv3(), gamma, opts, rng);
    EXPECT_TRUE(engine.replay().empty());
}

TEST(MseEngine, ParetoFrontierIsNondominated)
{
    MseEngine engine(accelB());
    RandomPrunedMapper random;
    MseOptions opts;
    opts.budget.max_samples = 500;
    Rng rng(4);
    const MseOutcome out =
        engine.optimize(resnetConv4(), random, opts, rng);
    const auto &entries = out.pareto.entries();
    for (size_t i = 0; i < entries.size(); ++i) {
        for (size_t j = 0; j < entries.size(); ++j) {
            if (i == j)
                continue;
            const bool dominated =
                entries[j].energy <= entries[i].energy &&
                entries[j].latency <= entries[i].latency &&
                (entries[j].energy < entries[i].energy ||
                 entries[j].latency < entries[i].latency);
            EXPECT_FALSE(dominated);
        }
    }
}

TEST(MseEngine, BestEdpIsOnParetoFrontier)
{
    MseEngine engine(accelB());
    GammaMapper gamma;
    MseOptions opts;
    opts.budget.max_samples = 500;
    Rng rng(5);
    const MseOutcome out =
        engine.optimize(resnetConv4(), gamma, opts, rng);
    const int idx = out.pareto.bestEdpIndex();
    ASSERT_GE(idx, 0);
    const auto &e = out.pareto.entries()[static_cast<size_t>(idx)];
    EXPECT_NEAR(e.energy * e.latency, out.bestEdp(),
                1e-9 * out.bestEdp());
}

TEST(MseEngine, WarmStartConvergesFasterOnSimilarLayer)
{
    // Optimize conv3 cold; then conv4 twice: cold vs warm-started.
    // The warm-started run should converge in no more generations
    // (Fig. 10's effect) and reach a comparable EDP.
    const uint64_t seed = 11;
    MseOptions opts;
    opts.budget.max_samples = 1200;

    MseEngine cold_engine(accelB());
    GammaMapper g1;
    Rng rng_cold(seed);
    const MseOutcome cold =
        cold_engine.optimize(resnetConv4(), g1, opts, rng_cold);

    MseEngine warm_engine(accelB());
    GammaMapper g2;
    Rng rng_warm(seed);
    warm_engine.optimize(resnetConv3(), g2, opts, rng_warm);
    MseOptions warm_opts = opts;
    warm_opts.warm_start = WarmStartStrategy::BySimilarity;
    const MseOutcome warm =
        warm_engine.optimize(resnetConv4(), g2, warm_opts, rng_warm);

    ASSERT_TRUE(cold.search.found() && warm.search.found());
    // Warm start must not hurt final quality by more than a bit.
    EXPECT_LT(warm.bestEdp(), cold.bestEdp() * 2.0);
    // And its first-generation incumbent should already be strong.
    EXPECT_LT(warm.search.log.best_edp_per_generation.front(),
              cold.search.log.best_edp_per_generation.front());
}

TEST(MseEngine, SparsePathUsesWorkloadDensities)
{
    Workload wl = resnetConv4();
    MseEngine engine(accelB());
    GammaMapper gamma;
    MseOptions opts;
    opts.budget.max_samples = 300;
    opts.sparse = true;
    Rng rng(6);
    const MseOutcome dense_out = engine.optimize(wl, gamma, opts, rng);

    Workload sparse_wl = resnetConv4();
    applyDensities(sparse_wl, 0.1, 1.0);
    GammaMapper gamma2;
    Rng rng2(6);
    const MseOutcome sparse_out =
        engine.optimize(sparse_wl, gamma2, opts, rng2);
    ASSERT_TRUE(dense_out.search.found() && sparse_out.search.found());
    EXPECT_LT(sparse_out.bestEdp(), dense_out.bestEdp());
}

TEST(MseEngine, ConvergenceIndicesWithinTraceLength)
{
    MseEngine engine(accelA());
    GammaMapper gamma;
    MseOptions opts;
    opts.budget.max_samples = 400;
    Rng rng(7);
    const MseOutcome out =
        engine.optimize(resnetConv3(), gamma, opts, rng);
    EXPECT_LT(out.generations_to_converge,
              out.search.log.best_edp_per_generation.size());
    EXPECT_LT(out.samples_to_converge,
              out.search.log.best_edp_per_sample.size());
}

} // namespace
} // namespace mse

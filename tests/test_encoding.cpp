#include <gtest/gtest.h>

#include "mapping/encoding.hpp"
#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

TEST(Encoding, WidthIsThreeBlocksPerLevel)
{
    MapSpace space(resnetConv4(), accelB());
    EXPECT_EQ(encodingWidth(space), 3u * 3u * 7u);
}

TEST(Encoding, ValuesInUnitInterval)
{
    MapSpace space(resnetConv4(), accelB());
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        const auto x = encodeMapping(space, space.randomMapping(rng));
        ASSERT_EQ(x.size(), encodingWidth(space));
        for (double v : x) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

TEST(Encoding, DistinctMappingsDistinctEncodings)
{
    MapSpace space(resnetConv4(), accelB());
    Rng rng(2);
    const auto a = encodeMapping(space, space.randomMapping(rng));
    const auto b = encodeMapping(space, space.randomMapping(rng));
    EXPECT_NE(a, b);
}

TEST(Decode, ArbitraryVectorsYieldLegalMappings)
{
    MapSpace space(resnetConv4(), accelB());
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        std::vector<double> x(encodingWidth(space));
        for (auto &v : x)
            v = rng.uniformReal(-0.5, 1.5); // even out-of-range inputs
        const Mapping m = decodeContinuous(space, x);
        ASSERT_EQ(validateMapping(space.workload(), space.arch(), m),
                  MappingError::Ok);
    }
}

TEST(Decode, RoundTripPreservesOrder)
{
    MapSpace space(resnetConv4(), accelB());
    Rng rng(4);
    const Mapping m = space.randomMapping(rng);
    const Mapping rt = decodeContinuous(space, encodeMapping(space, m));
    // Loop orders survive encode/decode exactly (they are rank scores).
    for (int l = 0; l < m.numLevels(); ++l)
        EXPECT_EQ(rt.level(l).order, m.level(l).order) << "level " << l;
}

TEST(Decode, RoundTripApproximatesTiling)
{
    // Tile factors may be re-rounded, but the dominant level of each
    // dimension should survive the round trip for most dims.
    MapSpace space(bertKqv(), accelB());
    Rng rng(5);
    int preserved = 0, total = 0;
    for (int i = 0; i < 20; ++i) {
        const Mapping m = space.randomMapping(rng);
        const Mapping rt =
            decodeContinuous(space, encodeMapping(space, m));
        for (int d = 0; d < m.numDims(); ++d) {
            if (space.workload().bound(d) <= 1)
                continue;
            ++total;
            // Compare which level holds the largest temporal factor.
            auto argmax = [&](const Mapping &mm) {
                int best = 0;
                for (int l = 1; l < mm.numLevels(); ++l) {
                    if (mm.level(l).temporal[d] >
                        mm.level(best).temporal[d])
                        best = l;
                }
                return best;
            };
            if (argmax(m) == argmax(rt))
                ++preserved;
        }
    }
    EXPECT_GT(preserved, total / 2);
}

TEST(WorkloadFeatures, PadsAndAppendsDensities)
{
    Workload wl = bertKqv(); // 4 dims
    wl.setDensity("Weights", 0.5);
    const auto f = workloadFeatures(wl, 8);
    ASSERT_EQ(f.size(), 8u + 3u);
    EXPECT_GT(f[0], 0.0);  // log bound of B
    EXPECT_EQ(f[4], 0.0);  // padded
    EXPECT_EQ(f[7], 0.0);  // padded
    // Densities follow in tensor order (Inputs, Weights, Outputs for
    // GEMM).
    EXPECT_DOUBLE_EQ(f[9], 0.5);
}

TEST(WorkloadFeatures, DistinguishWorkloads)
{
    EXPECT_NE(workloadFeatures(resnetConv3()),
              workloadFeatures(resnetConv4()));
}

} // namespace
} // namespace mse

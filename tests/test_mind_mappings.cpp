#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mapping/encoding.hpp"
#include "mappers/mind_mappings.hpp"
#include "mappers/random_pruned.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

SurrogateConfig
fastSurrogateConfig()
{
    SurrogateConfig cfg;
    cfg.train_samples = 800;
    cfg.epochs = 12;
    cfg.lr = 3e-3;
    cfg.hidden = {48, 24};
    return cfg;
}

std::shared_ptr<const MindMappingsSurrogate>
trainedOnAccelA()
{
    static std::shared_ptr<const MindMappingsSurrogate> cached = [] {
        Rng rng(77);
        return std::make_shared<const MindMappingsSurrogate>(
            accelA(),
            std::vector<Workload>{resnetConv3(), resnetConv4()},
            fastSurrogateConfig(), rng);
    }();
    return cached;
}

EvalFn
denseEval(const Workload &wl, const ArchConfig &arch)
{
    return [wl, arch](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
}

TEST(Surrogate, TrainingConverges)
{
    const auto sur = trainedOnAccelA();
    // Normalized squared error well below the unit-variance baseline.
    EXPECT_LT(sur->trainingLoss(), 1.0);
}

TEST(Surrogate, PredictsSaneMagnitudes)
{
    const auto sur = trainedOnAccelA();
    const Workload wl = resnetConv4();
    MapSpace space(wl, accelA());
    Rng rng(5);
    const Mapping m = space.randomMapping(rng);
    const auto y = sur->predict(wl, encodeMapping(space, m));
    ASSERT_EQ(y.size(), 2u);
    const CostResult truth = CostModel::evaluate(wl, accelA(), m);
    // Predicted log-energy and log-latency within a few decades.
    EXPECT_NEAR(y[0], std::log10(truth.energy_uj), 3.0);
    EXPECT_NEAR(y[1], std::log10(truth.latency_cycles), 3.0);
}

TEST(Surrogate, RanksGoodAboveBadOnAverage)
{
    const auto sur = trainedOnAccelA();
    const Workload wl = resnetConv4();
    MapSpace space(wl, accelA());
    Rng rng(6);
    int correct = 0;
    const int trials = 40;
    for (int i = 0; i < trials; ++i) {
        const Mapping a = space.randomMapping(rng);
        const Mapping b = space.randomMapping(rng);
        const double ta = CostModel::evaluate(wl, accelA(), a).edp;
        const double tb = CostModel::evaluate(wl, accelA(), b).edp;
        if (std::abs(std::log10(ta) - std::log10(tb)) < 0.5)
            continue; // too close to call
        const auto pa = sur->predict(wl, encodeMapping(space, a));
        const auto pb = sur->predict(wl, encodeMapping(space, b));
        const double sa = pa[0] + pa[1], sb = pb[0] + pb[1];
        if ((ta < tb) == (sa < sb))
            ++correct;
        else
            --correct;
    }
    EXPECT_GT(correct, 0); // better than coin-flipping
}

TEST(Surrogate, EncodingGradientHasSignal)
{
    const auto sur = trainedOnAccelA();
    const Workload wl = resnetConv4();
    MapSpace space(wl, accelA());
    Rng rng(7);
    const auto x = encodeMapping(space, space.randomMapping(rng));
    const auto g = sur->encodingGradient(wl, x);
    ASSERT_EQ(g.size(), x.size());
    double norm = 0;
    for (double v : g)
        norm += v * v;
    EXPECT_GT(norm, 0.0);
}

TEST(MindMappingsMapper, FindsLegalMapping)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelA();
    MapSpace space(wl, arch);
    MindMappingsMapper mapper(trainedOnAccelA());
    SearchBudget budget;
    budget.max_samples = 300;
    Rng rng(8);
    const SearchResult r =
        mapper.search(space, denseEval(wl, arch), budget, rng);
    ASSERT_TRUE(r.found());
    EXPECT_EQ(validateMapping(wl, arch, r.best_mapping), MappingError::Ok);
    EXPECT_LE(r.log.samples, budget.max_samples);
}

TEST(MindMappingsMapper, ImprovesOverItsOwnStart)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelA();
    MapSpace space(wl, arch);
    MindMappingsMapper mapper(trainedOnAccelA());
    SearchBudget budget;
    budget.max_samples = 400;
    Rng rng(9);
    const SearchResult r =
        mapper.search(space, denseEval(wl, arch), budget, rng);
    ASSERT_TRUE(r.found());
    const auto &trace = r.log.best_edp_per_sample;
    EXPECT_LT(trace.back(), trace.front());
}

TEST(MindMappingsMapper, WorksOnUnseenArchButReturnsLegal)
{
    // Fig. 3(c)(d): the Accel-A surrogate driving a search on Accel-B
    // still produces legal mappings (the quality degradation is the
    // bench's subject, legality is the library's invariant).
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    MindMappingsMapper mapper(trainedOnAccelA());
    SearchBudget budget;
    budget.max_samples = 200;
    Rng rng(10);
    const SearchResult r =
        mapper.search(space, denseEval(wl, arch), budget, rng);
    ASSERT_TRUE(r.found());
    EXPECT_EQ(validateMapping(wl, arch, r.best_mapping), MappingError::Ok);
}

} // namespace
} // namespace mse

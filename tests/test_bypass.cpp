#include <gtest/gtest.h>

#include "mappers/gamma.hpp"
#include "model/cost_model.hpp"
#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

using test::allAtTop;
using test::flatArch;
using test::tinyGemm;

TEST(Bypass, DefaultIsKeepEverywhere)
{
    const Mapping m(3, 4);
    for (int l = 0; l < 3; ++l)
        for (int t = 0; t < 5; ++t)
            EXPECT_TRUE(m.keeps(l, t));
}

TEST(Bypass, SetKeepRoundTrip)
{
    Mapping m(3, 4);
    m.setKeep(1, 0, false, 3);
    EXPECT_FALSE(m.keeps(1, 0));
    EXPECT_TRUE(m.keeps(1, 1));
    EXPECT_TRUE(m.keeps(0, 0));
    m.setKeep(1, 0, true, 3);
    EXPECT_TRUE(m.keeps(1, 0));
}

TEST(Bypass, DramMustKeepEverything)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    Mapping m = allAtTop(wl, arch);
    m.setKeep(arch.numLevels() - 1, 0, false, wl.numTensors());
    EXPECT_EQ(validateMapping(wl, arch, m), MappingError::BadShape);
}

TEST(Bypass, WrongMaskWidthRejected)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    Mapping m = allAtTop(wl, arch);
    m.level(0).keep = {1, 1}; // workload has 3 tensors
    EXPECT_EQ(validateMapping(wl, arch, m), MappingError::BadShape);
}

TEST(Bypass, BypassedTensorFreesCapacity)
{
    // A mapping whose weights tile overflows L1 becomes legal once
    // weights bypass L1.
    const Workload wl = makeGemm("g", 1, 4, 64, 4);
    const ArchConfig arch = test::flatArch(/*l1_words=*/128);
    Mapping m(arch.numLevels(), wl.numDims());
    // Hold the whole problem in L1: A=256, W=256, O=16 words > 128.
    for (int d = 0; d < wl.numDims(); ++d)
        m.level(0).temporal[d] = wl.bound(d);
    ASSERT_EQ(validateMapping(wl, arch, m),
              MappingError::CapacityExceeded);
    m.setKeep(0, 0, false, wl.numTensors()); // bypass A
    m.setKeep(0, 1, false, wl.numTensors()); // bypass W
    EXPECT_EQ(validateMapping(wl, arch, m), MappingError::Ok);
}

TEST(Bypass, TrafficReroutesAroundBypassedLevel)
{
    // With weights bypassing L1 in a 2-level machine, L1 sees no weight
    // traffic and the DRAM-side weight reads are unchanged (the fanout
    // between the kept levels is 1).
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    Mapping kept = allAtTop(wl, arch);
    Mapping bypassed = kept;
    bypassed.setKeep(0, 1, false, wl.numTensors()); // weights skip L1

    const AccessCounts a = computeAccessCounts(wl, arch, kept);
    const AccessCounts b = computeAccessCounts(wl, arch, bypassed);
    const int W = 1;
    EXPECT_GT(a.access[0][W].reads, 0.0);
    EXPECT_DOUBLE_EQ(b.access[0][W].reads, 0.0);
    EXPECT_DOUBLE_EQ(b.access[0][W].writes, 0.0);
    EXPECT_DOUBLE_EQ(b.access[1][W].reads, a.access[1][W].reads);
}

TEST(Bypass, SkippingAnInnerLevelLosesItsReuse)
{
    // Bypassing L2 for a tensor exposes the DRAM to the L1-level
    // refetch pattern: DRAM reads can only grow.
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        Mapping kept = space.randomMapping(rng);
        Mapping byp = kept;
        byp.setKeep(1, 0, false, wl.numTensors()); // weights skip L2
        if (validateMapping(wl, arch, byp) != MappingError::Ok)
            continue;
        const AccessCounts a = computeAccessCounts(wl, arch, kept);
        const AccessCounts b = computeAccessCounts(wl, arch, byp);
        const int dram = arch.numLevels() - 1;
        EXPECT_GE(b.access[dram][0].reads,
                  a.access[dram][0].reads * (1 - 1e-9));
    }
}

TEST(Bypass, FullyBypassedTensorStreamsFromDram)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    Mapping m = allAtTop(wl, arch);
    m.setKeep(0, 0, false, wl.numTensors()); // A only in DRAM
    ASSERT_EQ(validateMapping(wl, arch, m), MappingError::Ok);
    const AccessCounts c = computeAccessCounts(wl, arch, m);
    // A's reads all hit DRAM; no on-chip traffic at all.
    EXPECT_DOUBLE_EQ(c.access[0][0].reads, 0.0);
    EXPECT_GT(c.access[1][0].reads, 0.0);
}

TEST(Bypass, CanonicalKeyDistinguishesBypass)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    Mapping a = allAtTop(wl, arch);
    Mapping b = a;
    b.setKeep(0, 1, false, wl.numTensors());
    EXPECT_NE(a.canonicalKey(), b.canonicalKey());
}

TEST(Bypass, MutateBypassProducesValidatableMappings)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        Mapping m = space.randomMapping(rng);
        GammaMapper::mutateBypass(space, m, rng);
        space.repair(m);
        const MappingError err = validateMapping(wl, arch, m);
        // Bypass can only relax capacity; every repaired mutant must be
        // fully legal.
        ASSERT_EQ(err, MappingError::Ok) << m.toString(wl);
    }
}

TEST(Bypass, CrossoverInheritsKeepWithOrder)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(11);
    Mapping a = space.randomMapping(rng);
    Mapping b = space.randomMapping(rng);
    b.setKeep(0, 0, false, wl.numTensors());
    bool saw_inherited = false;
    for (int i = 0; i < 50 && !saw_inherited; ++i) {
        const Mapping child = GammaMapper::crossover(a, b, rng);
        if (!child.keeps(0, 0)) {
            saw_inherited = true;
            EXPECT_EQ(child.level(0).order, b.level(0).order);
        }
    }
    EXPECT_TRUE(saw_inherited);
}

TEST(Bypass, ScaleFromInheritsBypass)
{
    const Workload src = resnetConv3();
    const Workload dst = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace src_space(src, arch), dst_space(dst, arch);
    Rng rng(13);
    Mapping m = src_space.randomMapping(rng);
    m.setKeep(1, 2, false, src.numTensors());
    const Mapping scaled = dst_space.scaleFrom(m, src, rng);
    EXPECT_FALSE(scaled.keeps(1, 2));
}

TEST(Bypass, GammaWithBypassStillFindsLegalBest)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    EvalFn eval = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    GammaConfig cfg;
    cfg.mutate_bypass_prob = 0.5; // stress the operator
    GammaMapper gamma(cfg);
    SearchBudget budget;
    budget.max_samples = 800;
    Rng rng(17);
    const SearchResult r = gamma.search(space, eval, budget, rng);
    ASSERT_TRUE(r.found());
    EXPECT_EQ(validateMapping(wl, arch, r.best_mapping), MappingError::Ok);
}

TEST(Bypass, ToStringShowsBypassedTensors)
{
    const Workload wl = tinyGemm();
    Mapping m(2, wl.numDims());
    m.setKeep(0, 1, false, wl.numTensors());
    const std::string s = m.toString(wl);
    EXPECT_NE(s.find("bypass=[Weights]"), std::string::npos);
}

} // namespace
} // namespace mse

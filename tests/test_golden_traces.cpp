/**
 * @file
 * Golden-trace regression test for the analytical cost model.
 *
 * tests/data/golden_cost_traces.txt pins the exact energy, latency, EDP,
 * and per-level/per-tensor access counts of ten fixed (workload, arch,
 * mapping) triples. The mappings themselves are stored in the fixture
 * (mapping_io v1 lines), so the test is immune to changes in random
 * mapping generation: any numeric difference is a real cost-model
 * behavior change. Values are compared through their %.17g rendering,
 * which round-trips IEEE doubles exactly — a drift of one ULP fails
 * with a readable diff of expected vs. actual.
 *
 * Intentional model changes regenerate the fixture:
 *
 *   MSE_REGEN_GOLDEN=1 ./build/tests/test_golden_traces
 *
 * then re-run the suite and commit the new file alongside the change
 * that justifies it.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mapping/mapping_io.hpp"
#include "model/cost_model.hpp"
#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

std::string
fixturePath()
{
    return std::string(MSE_TEST_DATA_DIR) + "/golden_cost_traces.txt";
}

/** Exact decimal rendering that round-trips IEEE-754 doubles. */
std::string
g17(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

struct GoldenCase
{
    std::string name;
    Workload wl;
    ArchConfig arch;
    /** Seed used only at regeneration time to draw the mapping. */
    uint64_t seed = 0;
};

/** The ten pinned triples: every workload family x both Table-1
 *  accelerators plus the deep and flat test hierarchies. */
std::vector<GoldenCase>
goldenCases()
{
    return {
        {"resnet_conv3_accelA", resnetConv3(), accelA(), 11},
        {"resnet_conv3_accelB", resnetConv3(), accelB(), 12},
        {"resnet_conv4_accelA", resnetConv4(), accelA(), 13},
        {"inception_conv2_accelB", inceptionConv2(), accelB(), 14},
        {"bert_kqv_accelA", bertKqv(), accelA(), 15},
        {"bert_attn_accelB", bertAttn(), accelB(), 16},
        {"bert_fc_accelA", bertFc(), accelA(), 17},
        {"depthwise_mini",
         makeDepthwiseConv2d("dw", 4, 32, 14, 14, 3, 3), test::miniNpu(),
         18},
        {"conv4_deep_hierarchy", resnetConv4(),
         makeDeepNpu("deep", 64 * 1024, 2048, 64, 64, 4), 19},
        {"tiny_conv_flat", test::tinyConv(), test::flatArch(), 20},
    };
}

/** Draw the case's pinned-at-regen-time mapping. */
Mapping
drawMapping(const GoldenCase &c)
{
    MapSpace space(c.wl, c.arch);
    Rng rng(c.seed);
    return space.randomMapping(rng);
}

void
regenerate()
{
    std::ofstream out(fixturePath());
    ASSERT_TRUE(out.good()) << "cannot write " << fixturePath();
    out << "# Golden cost-model traces (v1). Regenerate with\n"
           "#   MSE_REGEN_GOLDEN=1 ./build/tests/test_golden_traces\n"
           "# Lines: case/mapping/energy_uj/latency_cycles/edp/\n"
           "#        access <level> <tensor> <reads> <writes>/end\n";
    for (const auto &c : goldenCases()) {
        const Mapping m = drawMapping(c);
        const CostResult r = CostModel::evaluate(c.wl, c.arch, m);
        ASSERT_TRUE(r.valid) << c.name;
        const AccessCounts counts =
            computeAccessCounts(c.wl, c.arch, m);
        out << "case " << c.name << "\n";
        out << "mapping " << serializeMapping(m) << "\n";
        out << "energy_uj " << g17(r.energy_uj) << "\n";
        out << "latency_cycles " << g17(r.latency_cycles) << "\n";
        out << "edp " << g17(r.edp) << "\n";
        for (size_t l = 0; l < counts.access.size(); ++l) {
            for (size_t t = 0; t < counts.access[l].size(); ++t) {
                out << "access " << l << " " << t << " "
                    << g17(counts.access[l][t].reads) << " "
                    << g17(counts.access[l][t].writes) << "\n";
            }
        }
        out << "end\n";
    }
}

/** Parsed expectation block for one case. */
struct GoldenExpect
{
    std::string mapping_line;
    std::string energy, latency, edp;
    std::vector<std::string> access; // "level tensor reads writes"
};

std::map<std::string, GoldenExpect>
loadFixture()
{
    std::map<std::string, GoldenExpect> cases;
    std::ifstream in(fixturePath());
    EXPECT_TRUE(in.good()) << "missing fixture " << fixturePath();
    std::string line, current;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream is(line);
        std::string key;
        is >> key;
        std::string rest = line.substr(
            std::min(line.size(), key.size() + 1));
        if (key == "case") {
            current = rest;
        } else if (key == "mapping") {
            cases[current].mapping_line = rest;
        } else if (key == "energy_uj") {
            cases[current].energy = rest;
        } else if (key == "latency_cycles") {
            cases[current].latency = rest;
        } else if (key == "edp") {
            cases[current].edp = rest;
        } else if (key == "access") {
            cases[current].access.push_back(rest);
        }
    }
    return cases;
}

TEST(GoldenTraces, CostModelMatchesPinnedFixture)
{
    if (std::getenv("MSE_REGEN_GOLDEN")) {
        regenerate();
        GTEST_SKIP() << "fixture regenerated at " << fixturePath();
    }
    const auto expected = loadFixture();
    ASSERT_EQ(expected.size(), goldenCases().size());

    for (const auto &c : goldenCases()) {
        const auto it = expected.find(c.name);
        ASSERT_NE(it, expected.end()) << "fixture missing " << c.name;
        const GoldenExpect &exp = it->second;

        const auto parsed = parseMapping(exp.mapping_line);
        ASSERT_TRUE(parsed.has_value()) << c.name;
        const Mapping &m = *parsed;
        ASSERT_EQ(validateMapping(c.wl, c.arch, m), MappingError::Ok)
            << c.name;

        const CostResult r = CostModel::evaluate(c.wl, c.arch, m);
        ASSERT_TRUE(r.valid) << c.name;
        EXPECT_EQ(g17(r.energy_uj), exp.energy) << c.name;
        EXPECT_EQ(g17(r.latency_cycles), exp.latency) << c.name;
        EXPECT_EQ(g17(r.edp), exp.edp) << c.name;

        const AccessCounts counts =
            computeAccessCounts(c.wl, c.arch, m);
        std::vector<std::string> actual;
        for (size_t l = 0; l < counts.access.size(); ++l) {
            for (size_t t = 0; t < counts.access[l].size(); ++t) {
                actual.push_back(std::to_string(l) + " " +
                                 std::to_string(t) + " " +
                                 g17(counts.access[l][t].reads) + " " +
                                 g17(counts.access[l][t].writes));
            }
        }
        EXPECT_EQ(actual, exp.access) << c.name;
    }
}

TEST(GoldenTraces, FixtureMappingsStayPinnedToGenerationSeeds)
{
    // Documents (non-fatally for the golden contract) that the stored
    // mappings came from the seeds above: if random generation changes,
    // this canary flags that a regen would alter the *mappings*, while
    // the golden test keeps guarding the cost model itself.
    if (std::getenv("MSE_REGEN_GOLDEN"))
        GTEST_SKIP();
    const auto expected = loadFixture();
    size_t matching = 0;
    for (const auto &c : goldenCases()) {
        const auto it = expected.find(c.name);
        if (it != expected.end() &&
            serializeMapping(drawMapping(c)) == it->second.mapping_line)
            ++matching;
    }
    EXPECT_EQ(matching, goldenCases().size())
        << "random mapping generation drifted; golden mappings remain "
           "valid but no longer match their generation seeds";
}

} // namespace
} // namespace mse

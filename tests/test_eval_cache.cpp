/**
 * @file
 * Tests for canonical Mapping hashing/equality and the memoizing
 * eval cache (hit/miss accounting, value fidelity, thread safety).
 */
#include <gtest/gtest.h>

#include <atomic>

#include "common/thread_pool.hpp"
#include "model/eval_cache.hpp"
#include "test_helpers.hpp"

namespace mse {
namespace {

/** 2-level, 4-dim mapping with two adjacent unit loops at level 0. */
Mapping
baseMapping()
{
    Mapping m(2, 4);
    // Dims 0 and 1 are unit at level 0; dims 2 and 3 carry factor 2.
    m.level(0).temporal = {1, 1, 2, 2};
    m.level(1).temporal = {1, 2, 1, 1};
    m.level(0).order = {0, 1, 2, 3};
    m.level(1).order = {3, 2, 1, 0};
    return m;
}

TEST(MappingHash, EqualCanonicalMappingsCollide)
{
    const Mapping a = baseMapping();
    Mapping b = baseMapping();
    // Dims 0 and 1 are an adjacent run of unit loops at level 0:
    // permuting them does not change the canonical mapping.
    b.level(0).order = {1, 0, 2, 3};
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());
}

TEST(MappingHash, PerturbedFactorsDoNotCollide)
{
    const Mapping a = baseMapping();
    Mapping b = baseMapping();
    // Migrate dim 2's tile factor outward: same total factor product,
    // different mapping.
    b.level(0).temporal[2] = 1;
    b.level(1).temporal[2] = 2;
    EXPECT_NE(a.hash(), b.hash());
    EXPECT_FALSE(a == b);
    EXPECT_TRUE(a != b);
}

TEST(MappingHash, NonUnitOrderSwapDoesNotCollide)
{
    const Mapping a = baseMapping();
    Mapping b = baseMapping();
    // Swapping the two non-unit loops at level 0 reorders real loops:
    // canonically distinct.
    b.level(0).order = {0, 1, 3, 2};
    EXPECT_NE(a.hash(), b.hash());
    EXPECT_FALSE(a == b);
}

TEST(MappingHash, UnitSwapAcrossNonUnitLoopDoesNotCollide)
{
    Mapping a = baseMapping();
    a.level(0).order = {0, 2, 1, 3}; // unit loops 0 and 1 split by 2
    Mapping b = a;
    b.level(0).order = {1, 2, 0, 3};
    EXPECT_NE(a.hash(), b.hash());
    EXPECT_FALSE(a == b);
}

TEST(MappingHash, ExplicitKeepAllMatchesEmptyMask)
{
    const Mapping a = baseMapping();
    Mapping b = baseMapping();
    // setKeep materializes an all-ones mask; flipping the bit back
    // leaves an explicit keep-everything mask, semantically identical
    // to the default empty one.
    b.setKeep(0, 1, false, 3);
    b.setKeep(0, 1, true, 3);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_TRUE(a == b);

    Mapping c = baseMapping();
    c.setKeep(0, 1, false, 3); // a real bypass must not collide
    EXPECT_NE(a.hash(), c.hash());
    EXPECT_FALSE(a == c);
}

TEST(EvalCache, HashCollisionDegradesToMissNeverWrongCost)
{
    // Force two canonically distinct mappings onto the same 64-bit key
    // through the hash-injection seam: the stored-key equality guard
    // must recompute the second mapping instead of serving the first
    // entry's cost.
    const Mapping a = baseMapping();
    Mapping b = baseMapping();
    b.level(0).temporal[2] = 1;
    b.level(1).temporal[2] = 2;
    ASSERT_FALSE(a == b);

    EvalCache cache(4);
    const CostEvalFn by_factor = [](const Mapping &m) {
        CostResult r;
        r.valid = true;
        // A stand-in cost that distinguishes the two mappings.
        r.edp = static_cast<double>(m.level(0).temporal[2]);
        return r;
    };
    const uint64_t shared_hash = 0xdeadbeefULL;
    const CostResult ra =
        cache.getOrComputeHashed(shared_hash, a, by_factor);
    const CostResult rb =
        cache.getOrComputeHashed(shared_hash, b, by_factor);
    EXPECT_DOUBLE_EQ(ra.edp, 2.0);
    EXPECT_DOUBLE_EQ(rb.edp, 1.0); // recomputed, not a's cached 2.0
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 2u);

    // The first entry keeps the slot (try_emplace): `a` still hits,
    // the collision loser keeps degrading to a recomputed miss.
    EXPECT_DOUBLE_EQ(cache.getOrComputeHashed(shared_hash, a, by_factor)
                         .edp,
                     2.0);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_DOUBLE_EQ(cache.getOrComputeHashed(shared_hash, b, by_factor)
                         .edp,
                     1.0);
    EXPECT_EQ(cache.misses(), 3u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCache, HitAndMissAccounting)
{
    const Workload wl = test::tinyGemm();
    const ArchConfig arch = test::flatArch();
    MapSpace space(wl, arch);
    Rng rng(11);
    const Mapping m1 = space.randomMapping(rng);
    Mapping m2 = space.randomMapping(rng);
    while (m2 == m1)
        m2 = space.randomMapping(rng);

    std::atomic<int> inner_calls{0};
    EvalCache cache(4);
    CostEvalFn inner = [&](const Mapping &m) {
        inner_calls.fetch_add(1);
        return CostModel::evaluate(wl, arch, m);
    };

    const CostResult direct = CostModel::evaluate(wl, arch, m1);
    const CostResult first = cache.getOrCompute(m1, inner);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 1u);
    const CostResult second = cache.getOrCompute(m1, inner);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(inner_calls.load(), 1);

    // Cached results are bit-identical to direct evaluation.
    EXPECT_EQ(first.valid, direct.valid);
    EXPECT_EQ(first.edp, direct.edp);
    EXPECT_EQ(second.edp, direct.edp);
    EXPECT_EQ(second.energy_uj, direct.energy_uj);
    EXPECT_EQ(second.latency_cycles, direct.latency_cycles);

    cache.getOrCompute(m2, inner);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 1.0 / 3.0);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(EvalCache, WrapProducesMemoizingEvalFn)
{
    const Workload wl = test::tinyGemm();
    const ArchConfig arch = test::flatArch();
    MapSpace space(wl, arch);
    Rng rng(5);
    const Mapping m = space.randomMapping(rng);

    int inner_calls = 0;
    EvalCache cache;
    CostEvalFn cached = cache.wrap([&](const Mapping &mm) {
        ++inner_calls;
        return CostModel::evaluate(wl, arch, mm);
    });
    const CostResult a = cached(m);
    const CostResult b = cached(m);
    EXPECT_EQ(inner_calls, 1);
    EXPECT_EQ(a.edp, b.edp);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(EvalCache, ConcurrentGetOrComputeIsConsistent)
{
    const Workload wl = test::tinyConv();
    const ArchConfig arch = test::miniNpu();
    MapSpace space(wl, arch);
    Rng rng(21);
    std::vector<Mapping> pool_maps;
    for (int i = 0; i < 16; ++i)
        pool_maps.push_back(space.randomMapping(rng));

    EvalCache cache(4);
    CostEvalFn inner = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };

    ThreadPool pool(4);
    const size_t n = 512;
    std::vector<double> edps(n, 0.0);
    pool.parallelFor(n, [&](size_t i) {
        const Mapping &m = pool_maps[i % pool_maps.size()];
        edps[i] = cache.getOrCompute(m, inner).edp;
    });
    for (size_t i = 0; i < n; ++i) {
        const double direct =
            CostModel::evaluate(wl, arch, pool_maps[i % pool_maps.size()])
                .edp;
        EXPECT_EQ(edps[i], direct) << "query " << i;
    }
    EXPECT_EQ(cache.hits() + cache.misses(), n);
    // Every distinct mapping is memoized at most once per race window;
    // with 16 uniques and 512 queries the hit rate must be high.
    EXPECT_GE(cache.hits(), n - 64);
}

} // namespace
} // namespace mse

#include <gtest/gtest.h>

#include "mapping/mapping.hpp"
#include "test_helpers.hpp"

namespace mse {
namespace {

using test::allAtTop;
using test::flatArch;
using test::tinyConv;
using test::tinyGemm;

TEST(Mapping, SkeletonIsAllOnesIdentity)
{
    const Mapping m(3, 4);
    EXPECT_EQ(m.numLevels(), 3);
    EXPECT_EQ(m.numDims(), 4);
    for (int l = 0; l < 3; ++l) {
        for (int d = 0; d < 4; ++d) {
            EXPECT_EQ(m.level(l).temporal[d], 1);
            EXPECT_EQ(m.level(l).spatial[d], 1);
        }
        EXPECT_EQ(m.level(l).order, (std::vector<int>{0, 1, 2, 3}));
    }
}

TEST(Mapping, CumulativeAndTotalFactors)
{
    Mapping m(3, 2);
    m.level(0).temporal[0] = 2;
    m.level(1).spatial[0] = 3;
    m.level(2).temporal[0] = 5;
    EXPECT_EQ(m.cumulativeFactor(0, 0), 2);
    EXPECT_EQ(m.cumulativeFactor(1, 0), 6);
    EXPECT_EQ(m.totalFactor(0), 30);
    EXPECT_EQ(m.totalFactor(1), 1);
}

TEST(Mapping, FactorColumnRoundTrip)
{
    Mapping m(2, 3);
    m.level(0).temporal[1] = 4;
    m.level(1).spatial[1] = 2;
    const auto col = m.factorColumn(1);
    EXPECT_EQ(col, (std::vector<int64_t>{4, 1, 1, 2}));
    Mapping m2(2, 3);
    m2.setFactorColumn(1, col);
    EXPECT_EQ(m2.factorColumn(1), col);
}

TEST(Mapping, SpatialProduct)
{
    Mapping m(2, 3);
    m.level(0).spatial = {2, 3, 1};
    EXPECT_EQ(m.spatialProduct(0), 6);
    EXPECT_EQ(m.spatialProduct(1), 1);
}

TEST(Validate, AcceptsTrivialLegalMapping)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    const Mapping m = allAtTop(wl, arch);
    EXPECT_EQ(validateMapping(wl, arch, m), MappingError::Ok);
}

TEST(Validate, DetectsBadShape)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    Mapping m(1, wl.numDims()); // wrong level count
    EXPECT_EQ(validateMapping(wl, arch, m), MappingError::BadShape);
}

TEST(Validate, DetectsBadFactorProduct)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    Mapping m = allAtTop(wl, arch);
    m.level(1).temporal[1] = 1; // M product now 1 != 2
    EXPECT_EQ(validateMapping(wl, arch, m),
              MappingError::BadFactorProduct);
}

TEST(Validate, DetectsBadOrder)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    Mapping m = allAtTop(wl, arch);
    m.level(0).order = {0, 0, 1, 2};
    EXPECT_EQ(validateMapping(wl, arch, m), MappingError::BadOrder);
}

TEST(Validate, DetectsFanoutExceeded)
{
    const Workload wl = tinyGemm();
    ArchConfig arch = flatArch();
    Mapping m = allAtTop(wl, arch);
    m.level(1).temporal[1] = 1;
    m.level(0).spatial[1] = 2; // fanout of flat arch L1 is 1
    EXPECT_EQ(validateMapping(wl, arch, m), MappingError::FanoutExceeded);
}

TEST(Validate, DetectsCapacityExceeded)
{
    const Workload wl = tinyConv();
    const ArchConfig arch = test::flatArch(/*l1_words=*/4);
    Mapping m(arch.numLevels(), wl.numDims());
    // Put everything at L1: tiles exceed the 4-word budget.
    for (int d = 0; d < wl.numDims(); ++d)
        m.level(0).temporal[d] = wl.bound(d);
    EXPECT_EQ(validateMapping(wl, arch, m),
              MappingError::CapacityExceeded);
}

TEST(Validate, SparseTensorsShrinkResidency)
{
    // A tile that overflows dense fits once the tensors are compressed.
    Workload wl = tinyConv();
    const int64_t dense_words = static_cast<int64_t>(
        wl.tensorVolume(0) + wl.tensorVolume(1) + wl.tensorVolume(2));
    const ArchConfig arch = test::flatArch(dense_words / 2);
    Mapping m(arch.numLevels(), wl.numDims());
    for (int d = 0; d < wl.numDims(); ++d)
        m.level(0).temporal[d] = wl.bound(d);
    EXPECT_EQ(validateMapping(wl, arch, m),
              MappingError::CapacityExceeded);
    wl.setDensity("Weights", 0.1);
    wl.setDensity("Inputs", 0.1);
    wl.setDensity("Outputs", 0.1);
    EXPECT_EQ(validateMapping(wl, arch, m), MappingError::Ok);
}

TEST(TileFootprint, SlidingWindowHalo)
{
    const Workload wl = tinyConv(); // Y=X=4, R=S=3
    const ArchConfig arch = flatArch();
    Mapping m = allAtTop(wl, arch);
    // Full problem at DRAM: input footprint is (Y+R-1)(X+S-1) = 6*6.
    EXPECT_DOUBLE_EQ(tileFootprint(wl, m, 1, 1), 1.0 * 2 * 6 * 6);
    // At L1 everything is a single element.
    EXPECT_DOUBLE_EQ(tileFootprint(wl, m, 1, 0), 1.0);
}

TEST(TileFootprint, GrowsWithCumulativeFactors)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    Mapping m = allAtTop(wl, arch);
    m.level(1).temporal[1] = 1;
    m.level(0).temporal[1] = 2; // M at L1
    // A tile [B=1, M=2, K=1] -> 2 words.
    EXPECT_DOUBLE_EQ(tileFootprint(wl, m, 0, 0), 2.0);
}

TEST(CanonicalKey, UnitLoopsOrderInsensitive)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    Mapping a = allAtTop(wl, arch);
    Mapping b = a;
    // At level 0 all temporal factors are 1: any order is equivalent.
    a.level(0).order = {0, 1, 2, 3};
    b.level(0).order = {3, 2, 1, 0};
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());
}

TEST(CanonicalKey, NonUnitLoopsOrderSensitive)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    Mapping a = allAtTop(wl, arch);
    Mapping b = a;
    // At DRAM, M/K/N have factor 2: order matters there.
    a.level(1).order = {0, 1, 2, 3};
    b.level(1).order = {0, 3, 2, 1};
    EXPECT_NE(a.canonicalKey(), b.canonicalKey());
}

TEST(CanonicalKey, DifferentTilesDifferentKeys)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = flatArch();
    Mapping a = allAtTop(wl, arch);
    Mapping b = a;
    b.level(1).temporal[1] = 1;
    b.level(0).temporal[1] = 2;
    EXPECT_NE(a.canonicalKey(), b.canonicalKey());
}

TEST(MappingErrorName, AllNamed)
{
    EXPECT_STREQ(mappingErrorName(MappingError::Ok), "Ok");
    EXPECT_STREQ(mappingErrorName(MappingError::CapacityExceeded),
                 "CapacityExceeded");
}

} // namespace
} // namespace mse

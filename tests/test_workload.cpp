#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"
#include "workload/workload.hpp"

namespace mse {
namespace {

TEST(Conv2d, DimsAndBounds)
{
    const Workload wl = makeConv2d("c", 16, 128, 64, 28, 28, 3, 3);
    EXPECT_EQ(wl.numDims(), 7);
    EXPECT_EQ(wl.dimNames(),
              (std::vector<std::string>{"B", "K", "C", "Y", "X", "R", "S"}));
    EXPECT_EQ(wl.bound(wl.dimIndex("K")), 128);
    EXPECT_EQ(wl.bound(wl.dimIndex("S")), 3);
    EXPECT_EQ(wl.dimIndex("Z"), -1);
}

TEST(Conv2d, TensorRelevance)
{
    const Workload wl = makeConv2d("c", 2, 4, 8, 6, 6, 3, 3);
    const int W = 0, I = 1, O = 2;
    // Weights[K,C,R,S].
    EXPECT_FALSE(wl.isRelevant(W, wl.dimIndex("B")));
    EXPECT_TRUE(wl.isRelevant(W, wl.dimIndex("K")));
    EXPECT_TRUE(wl.isRelevant(W, wl.dimIndex("C")));
    EXPECT_TRUE(wl.isRelevant(W, wl.dimIndex("R")));
    // Inputs[B,C,Y+R,X+S].
    EXPECT_TRUE(wl.isRelevant(I, wl.dimIndex("B")));
    EXPECT_FALSE(wl.isRelevant(I, wl.dimIndex("K")));
    EXPECT_TRUE(wl.isRelevant(I, wl.dimIndex("Y")));
    EXPECT_TRUE(wl.isRelevant(I, wl.dimIndex("R")));
    // Outputs[B,K,Y,X].
    EXPECT_TRUE(wl.isRelevant(O, wl.dimIndex("B")));
    EXPECT_FALSE(wl.isRelevant(O, wl.dimIndex("C")));
    EXPECT_FALSE(wl.isRelevant(O, wl.dimIndex("R")));
}

TEST(Conv2d, ReductionDimsAreCRS)
{
    const Workload wl = makeConv2d("c", 2, 4, 8, 6, 6, 3, 3);
    EXPECT_EQ(wl.reductionDims(),
              (std::vector<int>{wl.dimIndex("C"), wl.dimIndex("R"),
                                wl.dimIndex("S")}));
}

TEST(Conv2d, VolumesHonorSlidingWindow)
{
    const Workload wl = makeConv2d("c", 2, 4, 8, 6, 6, 3, 3);
    EXPECT_DOUBLE_EQ(wl.tensorVolume(0), 4.0 * 8 * 3 * 3);      // weights
    EXPECT_DOUBLE_EQ(wl.tensorVolume(1), 2.0 * 8 * 8 * 8);      // 6+3-1=8
    EXPECT_DOUBLE_EQ(wl.tensorVolume(2), 2.0 * 4 * 6 * 6);      // outputs
    EXPECT_DOUBLE_EQ(wl.totalMacs(), 2.0 * 4 * 8 * 6 * 6 * 3 * 3);
}

TEST(Gemm, ShapeAndReduction)
{
    const Workload wl = makeGemm("g", 16, 1024, 1024, 512);
    EXPECT_EQ(wl.numDims(), 4);
    EXPECT_EQ(wl.reductionDims(), (std::vector<int>{wl.dimIndex("K")}));
    EXPECT_DOUBLE_EQ(wl.totalMacs(), 16.0 * 1024 * 1024 * 512);
    EXPECT_DOUBLE_EQ(wl.tensorVolume(wl.outputTensor()),
                     16.0 * 1024 * 512);
}

TEST(DepthwiseConv, ChannelSharedAcrossAllTensors)
{
    const Workload wl = makeDepthwiseConv2d("dw", 1, 32, 14, 14, 3, 3);
    EXPECT_EQ(wl.numDims(), 6);
    for (int t = 0; t < wl.numTensors(); ++t)
        EXPECT_TRUE(wl.isRelevant(t, wl.dimIndex("C")));
    // Reduction dims are only R and S.
    EXPECT_EQ(wl.reductionDims(),
              (std::vector<int>{wl.dimIndex("R"), wl.dimIndex("S")}));
}

TEST(Workload, DensityAnnotations)
{
    Workload wl = makeGemm("g", 1, 8, 8, 8);
    EXPECT_DOUBLE_EQ(wl.density("Weights"), 1.0);
    wl.setDensity("Weights", 0.25);
    EXPECT_DOUBLE_EQ(wl.density("Weights"), 0.25);
    EXPECT_DOUBLE_EQ(wl.density("NoSuchTensor"), 1.0);
    EXPECT_THROW(wl.setDensity("NoSuchTensor", 0.5),
                 std::invalid_argument);
}

TEST(Workload, RejectsInvalidConstruction)
{
    EXPECT_THROW(Workload("w", {"A"}, {0}, {}), std::invalid_argument);
    EXPECT_THROW(Workload("w", {"A", "B"}, {1}, {}),
                 std::invalid_argument);
}

TEST(EditDistance, CountsDifferingDims)
{
    const Workload a = makeConv2d("a", 16, 64, 64, 28, 28, 3, 3);
    const Workload b = makeConv2d("b", 16, 128, 64, 28, 28, 3, 3);
    const Workload c = makeConv2d("c", 16, 128, 128, 14, 14, 3, 3);
    EXPECT_EQ(editDistance(a, a), 0);
    EXPECT_EQ(editDistance(a, b), 1);
    EXPECT_EQ(editDistance(a, c), 4);
    EXPECT_EQ(editDistance(b, a), 1); // symmetric
}

TEST(EditDistance, IncompatibleDimCountsAreMaximallyFar)
{
    const Workload conv = makeConv2d("a", 1, 2, 2, 2, 2, 1, 1);
    const Workload gemm = makeGemm("g", 1, 2, 2, 2);
    EXPECT_GT(editDistance(conv, gemm), conv.numDims());
}

TEST(ModelZoo, LayerCountsAndNames)
{
    EXPECT_EQ(vgg16Layers().size(), 13u);
    EXPECT_EQ(resnet18Layers().size(), 17u);
    EXPECT_EQ(bertLargeLayers().size(), 6u);
    EXPECT_GT(mobilenetV2Layers().size(), 15u);
    EXPECT_GT(mnasnetLayers().size(), 15u);
}

TEST(ModelZoo, Table1WorkloadsMatchPaper)
{
    const Workload r3 = resnetConv3();
    EXPECT_EQ(r3.bounds(),
              (std::vector<int64_t>{16, 128, 128, 28, 28, 3, 3}));
    const Workload r4 = resnetConv4();
    EXPECT_EQ(r4.bounds(),
              (std::vector<int64_t>{16, 256, 256, 14, 14, 3, 3}));
    const Workload i2 = inceptionConv2();
    EXPECT_EQ(i2.bounds(),
              (std::vector<int64_t>{16, 192, 192, 27, 27, 5, 5}));
    const Workload kqv = bertKqv();
    EXPECT_EQ(kqv.bounds(), (std::vector<int64_t>{16, 1024, 1024, 512}));
}

TEST(ModelZoo, MnasnetIsMoreIrregularThanVgg)
{
    // Mean editing distance between consecutive layers should be larger
    // for the NAS-found network (the property warm-start-by-similarity
    // exploits in Fig. 9).
    auto meanConsecutiveDistance = [](const std::vector<Workload> &ls) {
        double sum = 0;
        int n = 0;
        for (size_t i = 1; i < ls.size(); ++i) {
            if (ls[i].numDims() == ls[i - 1].numDims()) {
                sum += editDistance(ls[i], ls[i - 1]);
                ++n;
            }
        }
        return sum / n;
    };
    EXPECT_GT(meanConsecutiveDistance(mnasnetLayers()),
              meanConsecutiveDistance(vgg16Layers()));
}

TEST(Workload, ToStringContainsNameAndBounds)
{
    const Workload wl = makeGemm("my_gemm", 1, 2, 3, 4);
    const std::string s = wl.toString();
    EXPECT_NE(s.find("my_gemm"), std::string::npos);
    EXPECT_NE(s.find("K=3"), std::string::npos);
}

} // namespace
} // namespace mse

/**
 * @file
 * Wire protocol and TCP front end: request decoding, reply encoding,
 * and the hostile-peer matrix (malformed JSON, oversized lines,
 * mid-request disconnects, queued-deadline expiry) against a live
 * loopback server.
 */
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "arch/arch.hpp"
#include "common/math_util.hpp"
#include "service/net.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "test_helpers.hpp"
#include "workload/workload_io.hpp"
#include "service/error_codes.hpp"

namespace mse {
namespace {

// ---------------------------------------------------------------- codec

std::optional<WireRequest>
parse(const std::string &line, std::string *code = nullptr)
{
    std::string c, m;
    const auto req = parseWireRequest(line, &c, &m);
    if (code)
        *code = c;
    if (!req) {
        EXPECT_FALSE(m.empty()) << line;
    }
    return req;
}

TEST(Wire, ParsesPingAndStats)
{
    auto ping = parse("{\"type\":\"ping\"}");
    ASSERT_TRUE(ping.has_value());
    EXPECT_EQ(ping->kind, WireRequest::Kind::Ping);
    auto stats = parse(" {\"type\":\"stats\"} ");
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->kind, WireRequest::Kind::Stats);
}

TEST(Wire, ParsesFullSearchRequest)
{
    const auto req = parse(
        "{\"type\":\"search\","
        "\"workload\":{\"gemm\":{\"name\":\"g\",\"b\":2,\"m\":4,"
        "\"k\":8,\"n\":16}},"
        "\"arch\":\"accel-b\",\"mapper\":\"hill-climb\","
        "\"objective\":\"latency\",\"max_samples\":123,\"seed\":7,"
        "\"warm_start\":false,\"warm_seeds\":5,\"deadline_ms\":1500}");
    ASSERT_TRUE(req.has_value());
    ASSERT_EQ(req->kind, WireRequest::Kind::Search);
    const SearchRequest &s = req->search;
    EXPECT_EQ(serializeWorkload(s.workload),
              serializeWorkload(makeGemm("g", 2, 4, 8, 16)));
    EXPECT_EQ(s.arch.signature(), accelB().signature());
    EXPECT_EQ(s.mapper, "hill-climb");
    EXPECT_EQ(s.objective, Objective::Latency);
    EXPECT_EQ(s.max_samples, 123u);
    EXPECT_TRUE(s.seed_set);
    EXPECT_EQ(s.seed, 7u);
    EXPECT_FALSE(s.warm_start);
    EXPECT_EQ(s.warm_seeds, 5u);
    EXPECT_EQ(s.deadline_seconds, 1.5);
}

TEST(Wire, ParsesWorkloadStringArchObjectAndDensities)
{
    Workload ref = makeGemm("g", 1, 8, 8, 8);
    const auto req = parse(
        "{\"type\":\"search\","
        "\"workload\":\"" + serializeWorkload(ref) + "\","
        "\"arch\":{\"npu\":{\"l2_bytes\":8192,\"l1_bytes\":128,"
        "\"num_pes\":4,\"alus_per_pe\":2}},"
        "\"sparse\":true,\"densities\":{\"Weights\":0.25}}");
    ASSERT_TRUE(req.has_value());
    const SearchRequest &s = req->search;
    EXPECT_TRUE(s.sparse);
    EXPECT_EQ(s.workload.density("Weights"), 0.25);
    EXPECT_EQ(s.workload.density("Inputs"), 1.0);
    EXPECT_EQ(s.arch.signature(),
              makeNpu("npu", 8192, 128, 4, 2).signature());
}

TEST(Wire, RejectsBadRequestsWithStructuredCodes)
{
    const char *kGemm =
        "\"workload\":{\"gemm\":{\"b\":1,\"m\":8,\"k\":8,\"n\":8}}";
    const struct
    {
        const char *line;
        const char *code;
    } cases[] = {
        {"{oops", wire_errors::kBadJson},
        {"", wire_errors::kBadJson},
        {"42", wire_errors::kBadRequest},
        {"[]", wire_errors::kBadRequest},
        {"{}", wire_errors::kBadRequest},
        {"{\"type\":\"shutdown\"}", wire_errors::kBadRequest},
        {"{\"type\":\"search\"}", wire_errors::kBadWorkload},
        {"{\"type\":\"search\",\"workload\":\"not-wl1\"}",
         wire_errors::kBadWorkload},
        {"{\"type\":\"search\",\"workload\":{\"gemm\":"
         "{\"b\":0,\"m\":8,\"k\":8,\"n\":8}}}",
         wire_errors::kBadWorkload},
        {"{\"type\":\"search\",\"workload\":{\"gemm\":"
         "{\"b\":1,\"m\":2.5,\"k\":8,\"n\":8}}}",
         wire_errors::kBadWorkload},
        {"{\"type\":\"search\",\"workload\":{\"fft\":{}}}",
         wire_errors::kBadWorkload},
    };
    for (const auto &c : cases) {
        std::string code;
        EXPECT_FALSE(parse(c.line, &code).has_value()) << c.line;
        EXPECT_EQ(code, c.code) << c.line;
    }

    const std::string base =
        std::string("{\"type\":\"search\",") + kGemm;
    const struct
    {
        const char *tail;
        const char *code;
    } tails[] = {
        {"}", wire_errors::kBadArch},
        {",\"arch\":\"tpu-v9\"}", wire_errors::kBadArch},
        {",\"arch\":{\"npu\":{\"l2_bytes\":0,\"l1_bytes\":1,"
         "\"num_pes\":1,\"alus_per_pe\":1}}}",
         wire_errors::kBadArch},
        {",\"arch\":\"accel-A\",\"objective\":\"speed\"}",
         wire_errors::kBadRequest},
        {",\"arch\":\"accel-A\",\"max_samples\":-1}", wire_errors::kBadRequest},
        {",\"arch\":\"accel-A\",\"seed\":\"abc\"}", wire_errors::kBadRequest},
        {",\"arch\":\"accel-A\",\"densities\":{\"Weights\":2}}",
         wire_errors::kBadRequest},
        {",\"arch\":\"accel-A\",\"deadline_ms\":-5}", wire_errors::kBadRequest},
    };
    for (const auto &t : tails) {
        std::string code;
        EXPECT_FALSE(parse(base + t.tail, &code).has_value()) << t.tail;
        EXPECT_EQ(code, t.code) << t.tail;
    }
}

TEST(Wire, ReplyEncoders)
{
    const JsonValue err = wireError(wire_errors::kBadJson, "oops");
    EXPECT_EQ(err.dump(),
              "{\"ok\":false,\"error\":{\"code\":\"bad_json\","
              "\"message\":\"oops\"}}");
    EXPECT_FALSE(err.getBool("ok", true));
    EXPECT_EQ(err.find("error")->getString("code", ""), wire_errors::kBadJson);

    SearchReply fail;
    fail.ok = false;
    fail.error_code = wire_errors::kDeadlineExceeded;
    fail.error_message = "too late";
    const JsonValue ferr = searchReplyJson(fail);
    EXPECT_FALSE(ferr.getBool("ok", true));
    EXPECT_EQ(ferr.find("error")->getString("code", ""),
              wire_errors::kDeadlineExceeded);

    SearchReply okr;
    okr.ok = true;
    okr.mapping = "v1;x";
    okr.score = 2.5;
    okr.samples = 10;
    okr.samples_to_incumbent = 3;
    okr.store_hit = StoreHit::Near;
    okr.warm_distance = 1.0;
    okr.eval_cache_hits = 4;
    const auto parsed = parseJson(searchReplyJson(okr).dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->getBool("ok", false));
    EXPECT_EQ(parsed->getString("mapping", ""), "v1;x");
    EXPECT_EQ(parsed->getDouble("score", 0.0), 2.5);
    EXPECT_EQ(parsed->getInt("samples", 0), 10);
    EXPECT_EQ(parsed->getInt("samples_to_incumbent", 0), 3);
    EXPECT_EQ(parsed->getString("store", ""), "near");
    EXPECT_EQ(parsed->find("eval_cache")->getInt("hits", 0), 4);

    EXPECT_EQ(pingReplyJson().dump(), "{\"ok\":true,\"type\":\"ping\"}");

    // Retryable rejections carry a machine-readable retry_after_ms
    // hint inside the error object (DESIGN.md Sec. 9); terminal
    // errors omit it entirely.
    const JsonValue busy = wireError(wire_errors::kQueueFull, "try later", 750);
    EXPECT_EQ(busy.find("error")->getInt("retry_after_ms", -1), 750);
    EXPECT_EQ(err.find("error")->find("retry_after_ms"), nullptr);
    SearchReply shed;
    shed.ok = false;
    shed.error_code = wire_errors::kQueueFull;
    shed.error_message = "queue at capacity";
    shed.retry_after_ms = 1000;
    EXPECT_EQ(searchReplyJson(shed).find("error")->getInt(
                  "retry_after_ms", -1),
              1000);


    JsonValue stats = JsonValue::object();
    stats["queue_depth"] = 0;
    const JsonValue sr = statsReplyJson(stats);
    EXPECT_TRUE(sr.getBool("ok", false));
    EXPECT_EQ(sr.find("stats")->getInt("queue_depth", -1), 0);
}

/** One valid replicate payload unit (a best-mapping record). */
JsonValue
entryJson(double score = 42.0)
{
    const Workload wl = test::tinyGemm();
    const ArchConfig arch = test::miniNpu();
    StoreEntry e;
    e.workload = wl;
    e.arch_sig = fnv1a64Hex(arch.signature());
    e.objective = Objective::Edp;
    e.mapping = test::allAtTop(wl, arch);
    e.score = score;
    e.energy_uj = 1.0;
    e.latency_cycles = 10.0;
    e.samples = 7;
    return MappingStore::encodeEntryJson(e);
}

TEST(Wire, TolerantReaderIgnoresUnknownTopLevelFields)
{
    // The rolling-upgrade contract (wire.hpp): a newer peer may add
    // top-level fields; an older daemon must parse the request as if
    // they were absent, never reject it. Pinned here so a future
    // strict-validation refactor cannot silently break mixed-version
    // clusters.
    auto ping = parse(
        "{\"type\":\"ping\",\"trace_id\":\"t-1\",\"hops\":3}");
    ASSERT_TRUE(ping.has_value());
    EXPECT_EQ(ping->kind, WireRequest::Kind::Ping);

    auto stats = parse(
        "{\"type\":\"stats\",\"verbose\":true,"
        "\"extensions\":{\"future\":[1,2,3]}}");
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->kind, WireRequest::Kind::Stats);

    auto search = parse(
        "{\"type\":\"search\","
        "\"workload\":{\"gemm\":{\"b\":2,\"m\":4,\"k\":8,\"n\":16}},"
        "\"arch\":\"accel-A\",\"max_samples\":9,"
        "\"priority\":\"high\",\"client\":{\"version\":99}}");
    ASSERT_TRUE(search.has_value());
    ASSERT_EQ(search->kind, WireRequest::Kind::Search);
    EXPECT_EQ(search->search.max_samples, 9u);
    EXPECT_EQ(serializeWorkload(search->search.workload),
              serializeWorkload(makeGemm("gemm", 2, 4, 8, 16)));

    JsonValue msg = JsonValue::object();
    msg["type"] = "replicate";
    msg["from"] = "127.0.0.1:1";
    msg["entries"] = JsonValue::array();
    msg["entries"].push(entryJson());
    msg["epoch"] = 12; // unknown to this build
    auto rep = parse(msg.dump());
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->kind, WireRequest::Kind::Replicate);
    EXPECT_EQ(rep->replicate_entries.size(), 1u);
}

TEST(Wire, ParsesReplicateBatches)
{
    JsonValue msg = JsonValue::object();
    msg["type"] = "replicate";
    msg["from"] = "127.0.0.1:9001";
    JsonValue &entries = msg["entries"];
    entries = JsonValue::array();
    entries.push(entryJson(10.0));
    JsonValue bad = entryJson(5.0);
    bad["arch_sig"] = "xyz"; // not a 16-hex signature hash
    entries.push(bad);
    entries.push(JsonValue(static_cast<int64_t>(42))); // not an object

    const auto req = parse(msg.dump());
    ASSERT_TRUE(req.has_value());
    ASSERT_EQ(req->kind, WireRequest::Kind::Replicate);
    EXPECT_EQ(req->from, "127.0.0.1:9001");
    // Invalid entries are skipped and counted, never fatal: one bad
    // record must not wedge replication of the rest of the batch.
    ASSERT_EQ(req->replicate_entries.size(), 1u);
    EXPECT_EQ(req->replicate_invalid, 2u);
    EXPECT_EQ(req->replicate_entries[0].score, 10.0);

    // An empty batch is valid (a peer flushing nothing).
    auto empty =
        parse("{\"type\":\"replicate\",\"entries\":[]}");
    ASSERT_TRUE(empty.has_value());
    EXPECT_TRUE(empty->replicate_entries.empty());
    EXPECT_TRUE(empty->from.empty());

    // Missing or non-array entries: structurally broken, rejected.
    std::string code;
    EXPECT_FALSE(parse("{\"type\":\"replicate\"}", &code).has_value());
    EXPECT_EQ(code, wire_errors::kBadRequest);
    EXPECT_FALSE(
        parse("{\"type\":\"replicate\",\"entries\":7}", &code)
            .has_value());
    EXPECT_EQ(code, wire_errors::kBadRequest);
}

TEST(Wire, ParsesProbeAndSyncRequests)
{
    // Probe: trivially small, tolerant of extras, `from` optional.
    auto probe = parse(
        "{\"type\":\"probe\",\"from\":\"127.0.0.1:7001\",\"v\":2}");
    ASSERT_TRUE(probe.has_value());
    EXPECT_EQ(probe->kind, WireRequest::Kind::Probe);
    EXPECT_EQ(probe->from, "127.0.0.1:7001");
    auto bare = parse("{\"type\":\"probe\"}");
    ASSERT_TRUE(bare.has_value());
    EXPECT_TRUE(bare->from.empty());

    // Sync: the digest maps store key -> local best score.
    auto sync = parse(
        "{\"type\":\"sync\",\"from\":\"127.0.0.1:7002\","
        "\"digest\":{\"k1\":1.5,\"k2\":2,\"bogus\":\"nan\"}}");
    ASSERT_TRUE(sync.has_value());
    EXPECT_EQ(sync->kind, WireRequest::Kind::Sync);
    EXPECT_EQ(sync->from, "127.0.0.1:7002");
    // Non-numeric digest values are skipped (the responder then treats
    // the key as missing — extra shipped data merges idempotently).
    ASSERT_EQ(sync->sync_digest.size(), 2u);
    for (const auto &kv : sync->sync_digest) {
        if (kv.first == "k1")
            EXPECT_EQ(kv.second, 1.5);
        else
            EXPECT_EQ(kv.first, "k2");
    }
    // An empty digest is valid: a cold daemon wants everything.
    auto cold = parse("{\"type\":\"sync\",\"digest\":{}}");
    ASSERT_TRUE(cold.has_value());
    EXPECT_TRUE(cold->sync_digest.empty());

    // Missing or non-object digest: structurally broken, rejected.
    std::string code;
    EXPECT_FALSE(parse("{\"type\":\"sync\"}", &code).has_value());
    EXPECT_EQ(code, wire_errors::kBadRequest);
    EXPECT_FALSE(
        parse("{\"type\":\"sync\",\"digest\":[1]}", &code).has_value());
    EXPECT_EQ(code, wire_errors::kBadRequest);
}

TEST(Wire, ProbeAndSyncReplyEncoders)
{
    const JsonValue pr = probeReplyJson();
    EXPECT_TRUE(pr.getBool("ok", false));
    EXPECT_EQ(pr.getString("type", ""), "probe");

    std::vector<StoreEntry> entries;
    auto e = MappingStore::decodeEntryJson(entryJson(4.0));
    ASSERT_TRUE(e.has_value());
    entries.push_back(*e);
    const JsonValue sr = syncReplyJson(entries);
    EXPECT_TRUE(sr.getBool("ok", false));
    EXPECT_EQ(sr.getString("type", ""), "sync");
    EXPECT_EQ(sr.getInt("sent", -1), 1);
    const JsonValue *arr = sr.find("entries");
    ASSERT_NE(arr, nullptr);
    ASSERT_TRUE(arr->isArray());
    // The shipped records round-trip through the store codec.
    auto back = MappingStore::decodeEntryJson(arr->items()[0]);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->score, 4.0);

    const JsonValue none = syncReplyJson({});
    EXPECT_EQ(none.getInt("sent", -1), 0);
}

TEST(Wire, ClusterReplyEncoders)
{
    const JsonValue rr = replicateReplyJson(3, 2);
    EXPECT_TRUE(rr.getBool("ok", false));
    EXPECT_EQ(rr.getString("type", ""), "replicate");
    EXPECT_EQ(rr.getInt("merged", -1), 3);
    EXPECT_EQ(rr.getInt("ignored", -1), 2);

    // wrong_shard rejections carry the owner so a client can follow.
    SearchReply wrong;
    wrong.ok = false;
    wrong.error_code = wire_errors::kWrongShard;
    wrong.error_message = "not mine";
    wrong.error_owner = "127.0.0.1:7002";
    const JsonValue wj = searchReplyJson(wrong);
    EXPECT_EQ(wj.find("error")->getString("owner", ""),
              "127.0.0.1:7002");

    // Cluster observability fields ride successful replies — and stay
    // entirely off the wire outside a cluster.
    SearchReply okr;
    okr.ok = true;
    okr.mapping = "v1;x";
    okr.score = 1.0;
    okr.served_by = "127.0.0.1:7001";
    okr.store_key = "k|a|EDP|dense";
    const JsonValue oj = searchReplyJson(okr);
    EXPECT_EQ(oj.getString("served_by", ""), "127.0.0.1:7001");
    EXPECT_EQ(oj.getString("store_key", ""), "k|a|EDP|dense");
    okr.served_by.clear();
    okr.store_key.clear();
    const JsonValue pj = searchReplyJson(okr);
    EXPECT_EQ(pj.find("served_by"), nullptr);
    EXPECT_EQ(pj.find("store_key"), nullptr);
}

// ----------------------------------------------------------- TCP server

/** Live loopback server over a fast in-memory service. */
class WireTcpTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        ServiceConfig scfg;
        scfg.default_samples = 150;
        service_ = std::make_unique<MseService>(scfg);
        ServerConfig ncfg;
        ncfg.max_line_bytes = 2048;
        server_ = std::make_unique<ServiceServer>(*service_, ncfg);
        std::string err;
        ASSERT_TRUE(server_->start(&err)) << err;
    }

    void TearDown() override
    {
        server_->stop();
    }

    int connect()
    {
        std::string err;
        const int fd = connectTcp("127.0.0.1", server_->port(), &err);
        EXPECT_GE(fd, 0) << err;
        return fd;
    }

    /** Send one line and read one reply line, parsed. */
    JsonValue roundTrip(int fd, LineReader &r, const std::string &line,
                        int timeout_ms = 60000)
    {
        EXPECT_TRUE(sendLine(fd, line));
        std::string out;
        EXPECT_EQ(r.readLine(&out, timeout_ms), LineReader::Status::Line)
            << line;
        const auto doc = parseJson(out);
        EXPECT_TRUE(doc.has_value()) << out;
        return doc ? *doc : JsonValue();
    }

    static std::string searchLine(const char *extra = "")
    {
        return std::string(
                   "{\"type\":\"search\",\"workload\":{\"gemm\":"
                   "{\"b\":1,\"m\":8,\"k\":8,\"n\":8}},"
                   "\"arch\":{\"npu\":{\"l2_bytes\":8192,"
                   "\"l1_bytes\":128,\"num_pes\":4,"
                   "\"alus_per_pe\":2}}") +
            extra + "}";
    }

    std::unique_ptr<MseService> service_;
    std::unique_ptr<ServiceServer> server_;
};

TEST_F(WireTcpTest, PingStatsAndSearchRoundTrip)
{
    const int fd = connect();
    LineReader reader(fd);

    const JsonValue pong = roundTrip(fd, reader, "{\"type\":\"ping\"}");
    EXPECT_TRUE(pong.getBool("ok", false));
    EXPECT_EQ(pong.getString("type", ""), "ping");

    const JsonValue cold = roundTrip(fd, reader, searchLine());
    ASSERT_TRUE(cold.getBool("ok", false)) << cold.dump();
    EXPECT_FALSE(cold.getString("mapping", "").empty());
    EXPECT_EQ(cold.getString("store", ""), "cold");
    EXPECT_EQ(cold.getInt("samples", 0), 150);

    // Same request again: served warm out of the mapping store.
    const JsonValue warm = roundTrip(fd, reader, searchLine());
    ASSERT_TRUE(warm.getBool("ok", false));
    EXPECT_EQ(warm.getString("store", ""), "exact");
    EXPECT_EQ(warm.getDouble("warm_distance", -1.0), 0.0);
    EXPECT_LE(warm.getInt("samples_to_incumbent", 1 << 20),
              warm.getInt("samples", 0));
    EXPECT_LE(warm.getDouble("score", 1e300),
              cold.getDouble("score", 0.0) * (1.0 + 1e-9));

    const JsonValue stats =
        roundTrip(fd, reader, "{\"type\":\"stats\"}");
    ASSERT_TRUE(stats.getBool("ok", false));
    const JsonValue *body = stats.find("stats");
    ASSERT_NE(body, nullptr);
    EXPECT_EQ(body->find("requests")->getInt("search", 0), 2);
    EXPECT_EQ(body->find("store")->getInt("exact_hits", 0), 1);
    closeSocket(fd);
}

TEST_F(WireTcpTest, MalformedJsonGetsErrorAndConnectionSurvives)
{
    const int fd = connect();
    LineReader reader(fd);
    const JsonValue err = roundTrip(fd, reader, "{\"type\":oops");
    EXPECT_FALSE(err.getBool("ok", true));
    EXPECT_EQ(err.find("error")->getString("code", ""), wire_errors::kBadJson);

    const JsonValue err2 =
        roundTrip(fd, reader, "{\"type\":\"selfdestruct\"}");
    EXPECT_EQ(err2.find("error")->getString("code", ""), wire_errors::kBadRequest);

    // Same connection still serves valid requests.
    const JsonValue pong = roundTrip(fd, reader, "{\"type\":\"ping\"}");
    EXPECT_TRUE(pong.getBool("ok", false));
    closeSocket(fd);
}

TEST_F(WireTcpTest, OversizedLineGetsErrorThenClose)
{
    const int fd = connect();
    LineReader reader(fd);
    // 4 KiB of junk against a 2 KiB cap: framing is unrecoverable, so
    // the server must answer with a structured error and hang up.
    std::string huge(4096, 'x');
    sendLine(fd, huge); // may fail mid-send if the server closes early
    std::string out;
    ASSERT_EQ(reader.readLine(&out, 60000), LineReader::Status::Line);
    const auto doc = parseJson(out);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("error")->getString("code", ""),
              wire_errors::kRequestTooLarge);
    // The server hangs up; closing with unread junk queued may surface
    // as a reset (Error) rather than a clean EOF (Closed).
    const auto st = reader.readLine(&out, 60000);
    EXPECT_TRUE(st == LineReader::Status::Closed ||
                st == LineReader::Status::Error);
    closeSocket(fd);
}

TEST_F(WireTcpTest, MidRequestDisconnectLeavesServerHealthy)
{
    const int fd = connect();
    // Half a request, no newline, then vanish.
    const std::string partial = "{\"type\":\"sea";
    ASSERT_TRUE(sendAll(fd, partial.data(), partial.size()));
    closeSocket(fd);

    // The server shrugged it off and serves the next client.
    const int fd2 = connect();
    LineReader reader(fd2);
    const JsonValue pong = roundTrip(fd2, reader, "{\"type\":\"ping\"}");
    EXPECT_TRUE(pong.getBool("ok", false));
    closeSocket(fd2);
}

TEST_F(WireTcpTest, DisconnectCancelsSearchAndQueuedDeadlineExpires)
{
    // Client 1 starts a huge search, client 2 queues behind it with a
    // deadline that dies in the queue. Client 1 then hangs up: the
    // server must cancel its running search (freeing the executor) and
    // client 2 must get a deadline_exceeded error, not a search.
    const int fd1 = connect();
    ASSERT_TRUE(
        sendLine(fd1, searchLine(",\"max_samples\":50000000")));
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    const int fd2 = connect();
    LineReader reader2(fd2);
    ASSERT_TRUE(sendLine(fd2, searchLine(",\"deadline_ms\":1")));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    closeSocket(fd1); // peerClosed() fires the running CancelToken

    std::string out;
    ASSERT_EQ(reader2.readLine(&out, 60000), LineReader::Status::Line);
    const auto doc = parseJson(out);
    ASSERT_TRUE(doc.has_value()) << out;
    EXPECT_FALSE(doc->getBool("ok", true));
    EXPECT_EQ(doc->find("error")->getString("code", ""),
              wire_errors::kDeadlineExceeded);
    closeSocket(fd2);
}

} // namespace
} // namespace mse

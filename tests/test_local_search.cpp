#include <gtest/gtest.h>

#include "mappers/local_search.hpp"
#include "mappers/random_pruned.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

EvalFn
denseEval(const Workload &wl, const ArchConfig &arch)
{
    return [wl, arch](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
}

TEST(RandomNeighbor, AlwaysFactorLegal)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(1);
    Mapping m = space.randomMapping(rng);
    for (int i = 0; i < 200; ++i) {
        m = randomNeighbor(space, m, rng);
        ASSERT_EQ(validateMapping(wl, arch, m), MappingError::Ok);
    }
}

TEST(RandomNeighbor, ReachesDistinctMappings)
{
    const Workload wl = resnetConv3();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(2);
    const Mapping m = space.randomMapping(rng);
    std::set<std::string> keys;
    for (int i = 0; i < 50; ++i)
        keys.insert(randomNeighbor(space, m, rng).canonicalKey());
    EXPECT_GT(keys.size(), 10u);
}

TEST(SimulatedAnnealing, FindsLegalMappingAndImproves)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    SimulatedAnnealingMapper sa;
    SearchBudget budget;
    budget.max_samples = 1500;
    Rng rng(3);
    const SearchResult r =
        sa.search(space, denseEval(wl, arch), budget, rng);
    ASSERT_TRUE(r.found());
    EXPECT_EQ(validateMapping(wl, arch, r.best_mapping), MappingError::Ok);
    EXPECT_LT(r.log.best_edp_per_sample.back(),
              r.log.best_edp_per_sample.front());
}

TEST(SimulatedAnnealing, BeatsPureRandomOnAverage)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    SearchBudget budget;
    budget.max_samples = 1500;
    int wins = 0;
    for (uint64_t seed = 0; seed < 3; ++seed) {
        SimulatedAnnealingMapper sa;
        RandomPrunedMapper random;
        Rng ra(100 + seed), rr(200 + seed);
        const double a =
            sa.search(space, denseEval(wl, arch), budget, ra)
                .best_cost.edp;
        const double r =
            random.search(space, denseEval(wl, arch), budget, rr)
                .best_cost.edp;
        if (a < r)
            ++wins;
    }
    EXPECT_GE(wins, 2);
}

TEST(SimulatedAnnealing, UsesSeedAsStart)
{
    const Workload wl = resnetConv3();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(5);
    const Mapping seed = space.randomMapping(rng);
    const double seed_edp = CostModel::evaluate(wl, arch, seed).edp;

    SimulatedAnnealingMapper sa;
    sa.setInitialMappings({seed});
    SearchBudget budget;
    budget.max_samples = 5;
    Rng rng2(6);
    const SearchResult r =
        sa.search(space, denseEval(wl, arch), budget, rng2);
    // The first sample is the seed itself.
    EXPECT_DOUBLE_EQ(r.log.best_edp_per_sample.front(), seed_edp);
}

TEST(HillClimb, FindsLegalMappingAndImproves)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    HillClimbMapper hc;
    SearchBudget budget;
    budget.max_samples = 1500;
    Rng rng(7);
    const SearchResult r =
        hc.search(space, denseEval(wl, arch), budget, rng);
    ASSERT_TRUE(r.found());
    EXPECT_EQ(validateMapping(wl, arch, r.best_mapping), MappingError::Ok);
    EXPECT_LT(r.log.best_edp_per_sample.back(),
              r.log.best_edp_per_sample.front());
}

TEST(HillClimb, MonotoneBestTrace)
{
    const Workload wl = bertKqv();
    const ArchConfig arch = accelA();
    MapSpace space(wl, arch);
    HillClimbMapper hc;
    SearchBudget budget;
    budget.max_samples = 800;
    Rng rng(8);
    const SearchResult r =
        hc.search(space, denseEval(wl, arch), budget, rng);
    for (size_t i = 1; i < r.log.best_edp_per_sample.size(); ++i) {
        EXPECT_LE(r.log.best_edp_per_sample[i],
                  r.log.best_edp_per_sample[i - 1]);
    }
}

TEST(HillClimb, RestartsEscapeStagnation)
{
    // With an absurdly low restart threshold, the climber must still
    // make global progress via restarts.
    HillClimbConfig cfg;
    cfg.restart_after_stale = 5;
    const Workload wl = resnetConv3();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    HillClimbMapper hc(cfg);
    SearchBudget budget;
    budget.max_samples = 1000;
    Rng rng(9);
    const SearchResult r =
        hc.search(space, denseEval(wl, arch), budget, rng);
    ASSERT_TRUE(r.found());
    EXPECT_LT(r.best_cost.edp, r.log.best_edp_per_sample.front());
}

TEST(Annealing, RespectsSampleBudgetExactly)
{
    const Workload wl = resnetConv3();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    SimulatedAnnealingMapper sa;
    SearchBudget budget;
    budget.max_samples = 321;
    Rng rng(10);
    const SearchResult r =
        sa.search(space, denseEval(wl, arch), budget, rng);
    EXPECT_LE(r.log.samples, 321u);
    EXPECT_GE(r.log.samples, 320u);
}

} // namespace
} // namespace mse

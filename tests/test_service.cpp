/**
 * @file
 * MseService behavior: end-to-end searches, store warm-starts,
 * deadlines, cancellation, queue bounds, rejection paths, and the
 * bit-identical-to-direct-engine guarantee.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/fault_injection.hpp"
#include "common/metric_names.hpp"
#include "mapping/mapping_io.hpp"
#include "mappers/mapper.hpp"
#include "service/service.hpp"
#include "test_helpers.hpp"
#include "service/error_codes.hpp"

namespace mse {
namespace {

/** Arms the global injector for one test, disarming on scope exit. */
class GlobalFaultGuard
{
  public:
    explicit GlobalFaultGuard(const std::string &config)
    {
        std::string err;
        EXPECT_TRUE(FaultInjector::global().configure(config, &err))
            << err;
    }
    ~GlobalFaultGuard() { FaultInjector::global().clear(); }
};

SearchRequest
gemmRequest(size_t samples = 400)
{
    SearchRequest req;
    req.workload = makeGemm("svc_gemm", 8, 64, 64, 64);
    req.arch = test::miniNpu();
    req.max_samples = samples;
    return req;
}

TEST(MseService, EndToEndSearchSucceeds)
{
    MseService service;
    const SearchReply r = service.search(gemmRequest());
    ASSERT_TRUE(r.ok) << r.error_code << ": " << r.error_message;
    EXPECT_FALSE(r.mapping.empty());
    EXPECT_GT(r.score, 0.0);
    EXPECT_GT(r.energy_uj, 0.0);
    EXPECT_GT(r.latency_cycles, 0.0);
    EXPECT_EQ(r.samples, 400u);
    EXPECT_EQ(r.store_hit, StoreHit::Miss);
    EXPECT_TRUE(r.store_improved);
    EXPECT_FALSE(r.timed_out);
    EXPECT_FALSE(r.cancelled);
}

TEST(MseService, SecondIdenticalRequestWarmHitsExactly)
{
    MseService service;
    const SearchReply cold = service.search(gemmRequest());
    ASSERT_TRUE(cold.ok);
    const SearchReply warm = service.search(gemmRequest());
    ASSERT_TRUE(warm.ok);
    EXPECT_EQ(warm.store_hit, StoreHit::Exact);
    EXPECT_EQ(warm.warm_distance, 0.0);
    // The warm search starts from the stored incumbent, so it reaches
    // incumbent quality immediately and never scores worse.
    EXPECT_LT(warm.samples_to_incumbent, cold.samples_to_converge + 1);
    EXPECT_LE(warm.samples_to_incumbent, 2u);
    EXPECT_LE(warm.score, cold.score * (1.0 + 1e-9));
}

TEST(MseService, NearNeighborWarmsAcrossWorkloads)
{
    MseService service;
    SearchRequest a = gemmRequest();
    ASSERT_TRUE(service.search(a).ok);
    SearchRequest b = a;
    b.workload = makeGemm("svc_gemm_wide", 8, 128, 64, 64);
    const SearchReply r = service.search(b);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.store_hit, StoreHit::Near);
    EXPECT_GT(r.warm_distance, 0.0);
}

TEST(MseService, ResultsBitIdenticalToDirectEngineRun)
{
    SearchRequest req = gemmRequest(600);
    req.seed = 0xfeedULL;
    req.seed_set = true;
    req.warm_start = false; // pure cold path, like a direct caller

    MseService service;
    const SearchReply via_service = service.search(req);
    ASSERT_TRUE(via_service.ok);

    MseEngine engine(req.arch);
    MseOptions opts;
    opts.budget.max_samples = 600;
    opts.update_replay = false;
    Rng rng(0xfeedULL);
    const auto factory = makeMapperFactory("gamma");
    auto mapper = factory();
    const MseOutcome direct =
        engine.optimize(req.workload, *mapper, opts, rng);
    ASSERT_TRUE(direct.search.found());

    EXPECT_EQ(via_service.score, direct.search.best_cost.edp);
    EXPECT_EQ(via_service.energy_uj, direct.search.best_cost.energy_uj);
    EXPECT_EQ(via_service.latency_cycles,
              direct.search.best_cost.latency_cycles);
    EXPECT_EQ(via_service.mapping,
              serializeMapping(direct.search.best_mapping));
    EXPECT_EQ(via_service.samples, direct.search.log.samples);
}

TEST(MseService, IdenticalRequestsAreDeterministicWithoutSeed)
{
    // Unset seed derives from the layer signature: two fresh services
    // given the same request must agree bit for bit.
    MseService s1, s2;
    const SearchReply a = s1.search(gemmRequest());
    const SearchReply b = s2.search(gemmRequest());
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.score, b.score);
    EXPECT_EQ(a.mapping, b.mapping);
}

TEST(MseService, DeadlineExpiredInQueueReturnsStructuredError)
{
    ServiceConfig cfg;
    MseService service(cfg);
    // Occupy the executor with a long request, then enqueue one whose
    // deadline dies while it waits.
    SearchRequest slow = gemmRequest(60000);
    SearchRequest doomed = gemmRequest(100);
    doomed.deadline_seconds = 1e-3;
    auto t_slow = service.submit(slow);
    auto t_doomed = service.submit(doomed);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    t_slow.cancel->requestCancel();
    t_slow.reply.wait();
    const SearchReply r = t_doomed.reply.get();
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_code, wire_errors::kDeadlineExceeded);
}

TEST(MseService, CancellationStopsSearchEarly)
{
    MseService service;
    SearchRequest req = gemmRequest(2000000); // would run for a while
    auto ticket = service.submit(req);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ticket.cancel->requestCancel();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    ASSERT_EQ(ticket.reply.wait_until(deadline),
              std::future_status::ready);
    const SearchReply r = ticket.reply.get();
    EXPECT_TRUE(r.cancelled);
    // Stopped at a generation boundary, far short of the budget.
    EXPECT_LT(r.samples, 2000000u);
}

TEST(MseService, QueueFullRejectsImmediately)
{
    ServiceConfig cfg;
    cfg.queue_capacity = 1;
    MseService service(cfg);
    SearchRequest slow = gemmRequest(60000);
    auto running = service.submit(slow); // dequeued by the executor
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto queued = service.submit(gemmRequest(100)); // fills the queue
    auto rejected = service.submit(gemmRequest(100));
    const SearchReply r = rejected.reply.get();
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_code, wire_errors::kQueueFull);
    // Load-shedding rejections tell the client when to come back.
    EXPECT_EQ(r.retry_after_ms, cfg.retry_hint_ms);
    running.cancel->requestCancel();
    queued.cancel->requestCancel();
    running.reply.wait();
    queued.reply.wait();
}

TEST(MseService, BadRequestsFailFastWithoutQueueing)
{
    MseService service;
    SearchRequest bad = gemmRequest();
    bad.mapper = "no-such-mapper";
    EXPECT_EQ(service.search(bad).error_code, wire_errors::kUnknownMapper);

    SearchRequest empty;
    empty.arch = test::miniNpu();
    EXPECT_EQ(service.search(empty).error_code, wire_errors::kBadWorkload);
}

TEST(MseService, StopWithoutDrainFailsQueuedRequests)
{
    MseService service;
    auto a = service.submit(gemmRequest(60000));
    auto b = service.submit(gemmRequest(60000));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    service.stop(/*drain=*/false);
    const SearchReply rb = b.reply.get();
    EXPECT_FALSE(rb.ok);
    EXPECT_EQ(rb.error_code, wire_errors::kShuttingDown);
    // The running request was cancelled, not abandoned.
    const SearchReply ra = a.reply.get();
    EXPECT_TRUE(ra.cancelled || !ra.ok);
}

TEST(MseService, StatsReflectActivity)
{
    MseService service;
    ASSERT_TRUE(service.search(gemmRequest()).ok);
    ASSERT_TRUE(service.search(gemmRequest()).ok);
    const JsonValue stats = service.statsJson();
    EXPECT_EQ(stats.find("requests")->getInt("search", 0), 2);
    EXPECT_EQ(stats.find("store")->getInt("exact_hits", -1), 1);
    EXPECT_EQ(stats.find("store")->getInt("cold", -1), 1);
    EXPECT_EQ(stats.find("store")->getInt("entries", -1), 1);
    EXPECT_EQ(stats.find("latency")->getInt("count", 0), 2);
    EXPECT_GT(stats.find("search")->getInt("samples_total", 0), 0);
    EXPECT_GE(stats.getDouble("uptime_s", -1.0), 0.0);
}

TEST(MseService, ObjectiveChangesWhatIsMinimized)
{
    MseService service;
    SearchRequest edp = gemmRequest();
    SearchRequest lat = gemmRequest();
    lat.objective = Objective::Latency;
    const SearchReply r_edp = service.search(edp);
    const SearchReply r_lat = service.search(lat);
    ASSERT_TRUE(r_edp.ok);
    ASSERT_TRUE(r_lat.ok);
    // Objective evaluators put the objective score in `score`; the EDP
    // run's score multiplies energy and delay instead.
    EXPECT_EQ(r_lat.score, r_lat.latency_cycles);
    EXPECT_NE(r_edp.score, r_edp.latency_cycles);
    // The two objectives are separate store keys: both runs are cold.
    EXPECT_EQ(r_lat.store_hit, StoreHit::Miss);
}

TEST(MseService, CancelledWhileQueuedReturnsCancelledCode)
{
    MseService service; // One executor: the slow search pins the lane.
    auto running = service.submit(gemmRequest(2000000));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto queued = service.submit(gemmRequest(100));
    // Cancel the queued request first: when the executor frees up and
    // dequeues it, the cancellation is already visible — the reply
    // must be the structured cancelled error, not a search result.
    queued.cancel->requestCancel();
    running.cancel->requestCancel();
    const SearchReply r = queued.reply.get();
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_code, wire_errors::kCancelled);
    running.reply.wait();
}

TEST(MseService, InfeasibleSpaceReturnsNoValidMapping)
{
    // A 1-word L1 cannot hold even single-element tiles of all three
    // GEMM tensors: every mapping in the space is illegal, so the
    // search exhausts its budget without an incumbent.
    MseService service;
    SearchRequest req;
    req.workload = test::tinyGemm();
    req.arch = test::flatArch(/*l1_words=*/1);
    req.max_samples = 64;
    const SearchReply r = service.search(req);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_code, wire_errors::kNoValidMapping);
    EXPECT_FALSE(r.timed_out);
    EXPECT_FALSE(r.cancelled);
}

TEST(MseService, StatsSchemaCarriesEveryAlwaysKey)
{
    // Pins the static stats schema to the metric_names registry:
    // tools/mse_analyze.py cross-checks the emitted tree against the
    // header; this test closes the loop at runtime.
    MseService service;
    ASSERT_TRUE(service.search(gemmRequest()).ok);
    const JsonValue stats = service.statsJson();
    for (const char *key : metric_names::kAlwaysKeys)
        EXPECT_NE(test::findMetricPath(stats, key), nullptr) << key;
}

TEST(MseService, StatsSchemaConditionalKeysAppearWhenTriggered)
{
    MseService service;
    MseService::ClusterHooks hooks;
    hooks.self = "127.0.0.1:0";
    service.setClusterHooks(std::move(hooks));
    // A successful improving search populates store.per_key.*.
    ASSERT_TRUE(service.search(gemmRequest()).ok);
    // Any armed site (even a synthetic test.* one) flips faults.*.
    GlobalFaultGuard guard("test.stats.schema:once:1:EIO");
    const JsonValue stats = service.statsJson();
    for (const char *key : metric_names::kConditionalKeys) {
        const std::string k = key;
        if (k.rfind("replication.", 0) == 0)
            continue; // Agent-emitted; pinned by the cluster suite.
        if (k.rfind("health.", 0) == 0)
            continue; // Monitor-emitted; pinned by the health suite.
        EXPECT_NE(test::findMetricPath(stats, k), nullptr) << key;
    }
}

} // namespace
} // namespace mse

/**
 * @file
 * Determinism tests for the parallel batch-evaluation layer: for a
 * fixed RNG seed, a fully serial run (pool size 1) and a multi-threaded
 * run must produce bit-identical search results and convergence logs,
 * and the eval cache must be transparent to the search trajectory.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/mse_engine.hpp"
#include "mappers/gamma.hpp"
#include "mappers/random_pruned.hpp"
#include "mappers/standard_ga.hpp"
#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

/** Restore a 1-lane global pool after each test, whatever happened. */
class ParallelEval : public ::testing::Test
{
  protected:
    void TearDown() override { ThreadPool::setGlobalThreads(1); }
};

SearchResult
runMapper(Mapper &mapper, unsigned threads, uint64_t seed,
          size_t max_samples)
{
    ThreadPool::setGlobalThreads(threads);
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    EvalFn eval = [wl, arch](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    SearchBudget budget;
    budget.max_samples = max_samples;
    Rng rng(seed);
    return mapper.search(space, eval, budget, rng);
}

void
expectIdenticalRuns(const SearchResult &serial, const SearchResult &par)
{
    ASSERT_TRUE(serial.found());
    ASSERT_TRUE(par.found());
    EXPECT_EQ(serial.best_cost.edp, par.best_cost.edp);
    EXPECT_EQ(serial.best_cost.energy_uj, par.best_cost.energy_uj);
    EXPECT_EQ(serial.best_cost.latency_cycles,
              par.best_cost.latency_cycles);
    EXPECT_TRUE(serial.best_mapping == par.best_mapping);
    EXPECT_EQ(serial.log.samples, par.log.samples);
    ASSERT_EQ(serial.log.best_edp_per_sample.size(),
              par.log.best_edp_per_sample.size());
    for (size_t i = 0; i < serial.log.best_edp_per_sample.size(); ++i) {
        ASSERT_EQ(serial.log.best_edp_per_sample[i],
                  par.log.best_edp_per_sample[i])
            << "per-sample log diverges at sample " << i;
    }
    ASSERT_EQ(serial.log.best_edp_per_generation.size(),
              par.log.best_edp_per_generation.size());
    for (size_t i = 0; i < serial.log.best_edp_per_generation.size();
         ++i) {
        ASSERT_EQ(serial.log.best_edp_per_generation[i],
                  par.log.best_edp_per_generation[i])
            << "per-generation log diverges at generation " << i;
    }
}

TEST_F(ParallelEval, GammaSerialAndParallelRunsAreIdentical)
{
    GammaMapper serial_mapper, parallel_mapper;
    const SearchResult serial = runMapper(serial_mapper, 1, 7, 600);
    const SearchResult par = runMapper(parallel_mapper, 4, 7, 600);
    expectIdenticalRuns(serial, par);
}

TEST_F(ParallelEval, StandardGaSerialAndParallelRunsAreIdentical)
{
    StandardGaMapper serial_mapper, parallel_mapper;
    const SearchResult serial = runMapper(serial_mapper, 1, 13, 500);
    const SearchResult par = runMapper(parallel_mapper, 4, 13, 500);
    expectIdenticalRuns(serial, par);
}

TEST_F(ParallelEval, RandomPrunedSerialAndParallelRunsAreIdentical)
{
    RandomPrunedMapper serial_mapper, parallel_mapper;
    const SearchResult serial = runMapper(serial_mapper, 1, 29, 400);
    const SearchResult par = runMapper(parallel_mapper, 4, 29, 400);
    expectIdenticalRuns(serial, par);
}

TEST_F(ParallelEval, EvaluateBatchHonorsSampleBudget)
{
    ThreadPool::setGlobalThreads(4);
    const Workload wl = test::tinyConv();
    const ArchConfig arch = test::miniNpu();
    MapSpace space(wl, arch);
    EvalFn eval = [wl, arch](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    SearchBudget budget;
    budget.max_samples = 10;
    SearchTracker tracker(eval, budget);
    Rng rng(3);
    std::vector<Mapping> batch;
    for (int i = 0; i < 64; ++i)
        batch.push_back(space.randomMapping(rng));
    const auto &costs = tracker.evaluateBatch(batch);
    EXPECT_EQ(costs.size(), 10u);
    EXPECT_EQ(tracker.samples(), 10u);
    EXPECT_TRUE(tracker.exhausted());
    // A further batch evaluates nothing.
    EXPECT_TRUE(tracker.evaluateBatch(batch).empty());
}

TEST_F(ParallelEval, EvaluateBatchEdgeShapes)
{
    // Empty batch, singleton batch, and a pool wider than the batch
    // must all behave like the serial reference.
    ThreadPool::setGlobalThreads(8);
    const Workload wl = test::tinyConv();
    const ArchConfig arch = test::miniNpu();
    MapSpace space(wl, arch);
    EvalFn eval = [wl, arch](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    SearchBudget budget;
    budget.max_samples = 100;
    SearchTracker tracker(eval, budget);
    Rng rng(5);

    EXPECT_TRUE(tracker.evaluateBatch({}).empty());
    EXPECT_EQ(tracker.samples(), 0u);

    const Mapping single = space.randomMapping(rng);
    const auto &one = tracker.evaluateBatch({single});
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].edp, CostModel::evaluate(wl, arch, single).edp);
    EXPECT_EQ(tracker.samples(), 1u);

    std::vector<Mapping> small; // 3 candidates on an 8-lane pool
    for (int i = 0; i < 3; ++i)
        small.push_back(space.randomMapping(rng));
    const auto &costs = tracker.evaluateBatch(small);
    ASSERT_EQ(costs.size(), 3u);
    for (size_t i = 0; i < small.size(); ++i) {
        EXPECT_EQ(costs[i].edp,
                  CostModel::evaluate(wl, arch, small[i]).edp)
            << "index " << i;
    }
    EXPECT_EQ(tracker.samples(), 4u);
}

TEST_F(ParallelEval, EvalCacheIsTransparentToSearchTrajectory)
{
    const Workload wl = resnetConv4();

    auto run = [&](bool use_cache, unsigned threads) {
        ThreadPool::setGlobalThreads(threads);
        MseEngine engine(accelB());
        GammaMapper mapper;
        MseOptions opts;
        opts.budget.max_samples = 600;
        opts.use_eval_cache = use_cache;
        Rng rng(42);
        return engine.optimize(wl, mapper, opts, rng);
    };

    const MseOutcome uncached = run(false, 1);
    const MseOutcome cached = run(true, 1);
    const MseOutcome cached_parallel = run(true, 4);

    EXPECT_EQ(uncached.eval_cache_hits + uncached.eval_cache_misses, 0u);
    // GA populations duplicate genomes, so a real search must hit.
    EXPECT_GT(cached.eval_cache_hits, 0u);
    EXPECT_EQ(cached.eval_cache_hits + cached.eval_cache_misses,
              cached.search.log.samples);

    expectIdenticalRuns(uncached.search, cached.search);
    expectIdenticalRuns(uncached.search, cached_parallel.search);
    EXPECT_EQ(cached.eval_cache_hits, cached_parallel.eval_cache_hits);
}

TEST_F(ParallelEval, ParetoFrontierContentIsThreadCountInvariant)
{
    const Workload wl = resnetConv4();
    auto run = [&](unsigned threads) {
        ThreadPool::setGlobalThreads(threads);
        MseEngine engine(accelB());
        GammaMapper mapper;
        MseOptions opts;
        opts.budget.max_samples = 400;
        Rng rng(9);
        return engine.optimize(wl, mapper, opts, rng);
    };
    const MseOutcome serial = run(1);
    const MseOutcome par = run(4);

    // Payload sample indices may differ across thread counts; the
    // frontier's objective-space content may not.
    auto points = [](const MseOutcome &o) {
        std::vector<std::pair<double, double>> pts;
        for (const auto &e : o.pareto.entries())
            pts.emplace_back(e.energy, e.latency);
        std::sort(pts.begin(), pts.end());
        return pts;
    };
    EXPECT_EQ(points(serial), points(par));
}

} // namespace
} // namespace mse

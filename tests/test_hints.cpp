/**
 * @file
 * Hinted handoff: the HintLog bounded file-backed queue (overflow,
 * persistence, torn-tail recovery, fault-site behavior) and the
 * ReplicationAgent's spill-on-Down / drain-on-recovery path against a
 * real loopback daemon — the in-process version of what the chaos
 * harness Phase 6 certifies across partition cycles.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hints.hpp"
#include "cluster/replication.hpp"
#include "common/cluster_faults.hpp"
#include "common/fault_injection.hpp"
#include "common/math_util.hpp"
#include "service/server.hpp"
#include "test_helpers.hpp"

namespace mse {
namespace {

using test::allAtTop;
using test::miniNpu;
using test::tinyGemm;

/** Arms the global injector for one test, disarming on scope exit. */
class GlobalFaultGuard
{
  public:
    explicit GlobalFaultGuard(const std::string &config)
    {
        std::string err;
        EXPECT_TRUE(FaultInjector::global().configure(config, &err))
            << err;
    }
    ~GlobalFaultGuard()
    {
        FaultInjector::global().clear();
        clusterFaultPeersConfigure("");
    }
};

bool
waitUntil(const std::function<bool()> &pred, int timeout_ms = 15000)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
}

StoreEntry
makeEntry(int m, double score)
{
    const Workload wl = makeGemm("g", 1, m, 8, 8);
    const ArchConfig arch = miniNpu();
    StoreEntry e;
    e.workload = wl;
    e.arch_sig = fnv1a64Hex(arch.signature());
    e.objective = Objective::Edp;
    e.mapping = allAtTop(wl, arch);
    e.score = score;
    e.energy_uj = 1.0;
    e.latency_cycles = 10.0;
    e.samples = 5;
    return e;
}

std::string
tempHintPrefix(const char *tag)
{
    return testing::TempDir() + "/mse_hints_" + tag + "_";
}

std::string
slurp(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

// ----------------------------------------------------------- HintLog

TEST(HintFilePath, SanitizesPeerAddressIntoPrefix)
{
    EXPECT_EQ(hintFilePath("/tmp/store.", "127.0.0.1:9001"),
              "/tmp/store.hints_127.0.0.1_9001.jsonl");
    // '/' in a peer address must not create directories.
    EXPECT_EQ(hintFilePath("p.", "a/b:1"), "p.hints_a_b_1.jsonl");
    // Empty prefix = memory-only log, no file at all.
    EXPECT_EQ(hintFilePath("", "127.0.0.1:9001"), "");
}

TEST(HintLog, OverflowDropsOldestAndCountsIt)
{
    HintLog log("", 3);
    for (int m = 1; m <= 5; ++m)
        log.push(makeEntry(m, 10.0 * m));
    EXPECT_EQ(log.size(), 3u);
    EXPECT_EQ(log.dropped(), 2u);
    // The survivors are the freshest three, oldest-first.
    const auto batch = log.peek(10);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].score, 30.0);
    EXPECT_EQ(batch[2].score, 50.0);
    log.popFront(2);
    EXPECT_EQ(log.size(), 1u);
}

TEST(HintLog, PersistsAcrossReconstructionAndTruncatesWhenDrained)
{
    const std::string path =
        tempHintPrefix("persist") + "hints_peer.jsonl";
    std::remove(path.c_str());
    {
        HintLog log(path, 64);
        for (int m = 1; m <= 3; ++m)
            log.push(makeEntry(m, 7.0 * m));
        EXPECT_EQ(log.size(), 3u);
    }
    // A restart (new HintLog over the same file) sees every hint.
    HintLog reloaded(path, 64);
    EXPECT_EQ(reloaded.size(), 3u);
    EXPECT_FALSE(reloaded.tailUnterminated());
    EXPECT_EQ(reloaded.malformedLines(), 0u);
    const auto batch = reloaded.peek(10);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].score, 7.0);
    // Draining the queue truncates the backing file.
    reloaded.popFront(3);
    EXPECT_EQ(reloaded.size(), 0u);
    EXPECT_TRUE(slurp(path).empty());
    HintLog empty(path, 64);
    EXPECT_EQ(empty.size(), 0u);
    std::remove(path.c_str());
}

TEST(HintLog, LoadRecoversTornTailAndSkipsMalformedLines)
{
    const std::string path = tempHintPrefix("tail") + "hints_t.jsonl";
    std::remove(path.c_str());
    // One good line, one malformed line, and a crash-torn final line
    // (valid JSON, no trailing newline) — the MappingStore tail
    // conventions apply verbatim.
    const std::string good = MappingStore::encodeEntry(makeEntry(1, 5.0));
    const std::string torn = MappingStore::encodeEntry(makeEntry(2, 6.0));
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "%s\n{not json}\n%s", good.c_str(), torn.c_str());
    std::fclose(f);

    HintLog log(path, 64);
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.malformedLines(), 1u);
    EXPECT_TRUE(log.tailUnterminated());
    const auto batch = log.peek(10);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].score, 5.0);
    EXPECT_EQ(batch[1].score, 6.0);
    std::remove(path.c_str());
}

TEST(HintLog, AppendFaultKeepsHintInMemoryOnly)
{
    const std::string path = tempHintPrefix("afault") + "hints_a.jsonl";
    std::remove(path.c_str());
    HintLog log(path, 64);
    {
        GlobalFaultGuard guard("cluster.hint.append:every:1:EIO");
        log.push(makeEntry(1, 5.0));
    }
    // The hint is live in memory — append failure costs only the
    // crash-durability of this one hint, never the hint itself.
    EXPECT_EQ(log.size(), 1u);
    EXPECT_TRUE(slurp(path).empty());
    // With the fault cleared the next push appends normally.
    log.push(makeEntry(2, 6.0));
    EXPECT_EQ(log.size(), 2u);
    EXPECT_FALSE(slurp(path).empty());
    std::remove(path.c_str());
}

TEST(HintLog, ReadFaultLoadsNothingWithoutCrashing)
{
    const std::string path = tempHintPrefix("rfault") + "hints_r.jsonl";
    std::remove(path.c_str());
    {
        HintLog log(path, 64);
        log.push(makeEntry(1, 5.0));
    }
    GlobalFaultGuard guard("cluster.hint.read:every:1:EIO");
    // Unreadable hint file = no pending hints (anti-entropy sync
    // backstops the loss); the daemon must come up regardless.
    HintLog log(path, 64);
    EXPECT_EQ(log.size(), 0u);
    std::remove(path.c_str());
}

// --------------------------------------- agent-level spill and drain

/** One loopback daemon that accepts replicate batches. */
struct LiveNode
{
    std::unique_ptr<MseService> service;
    std::unique_ptr<ServiceServer> server;
    std::string addr;

    LiveNode()
    {
        ServiceConfig scfg;
        scfg.executors = 2; // ThreadPool one-top-level-caller contract.
        service = std::make_unique<MseService>(scfg);
        server = std::make_unique<ServiceServer>(*service,
                                                 ServerConfig{});
        std::string err;
        EXPECT_TRUE(server->start(&err)) << err;
        addr = "127.0.0.1:" + std::to_string(server->port());
    }
};

ReplicationConfig
fastAgent()
{
    ReplicationConfig rcfg;
    rcfg.flush_interval_ms = 5;
    rcfg.backoff_base_ms = 10;
    rcfg.backoff_cap_ms = 40;
    rcfg.io_timeout_ms = 2000;
    return rcfg;
}

/** Hooks whose health answer is a shared switch the test flips. */
ReplicationHooks
switchedHealth(const std::shared_ptr<std::atomic<int>> &down)
{
    ReplicationHooks hooks;
    hooks.health_of = [down](const std::string &) {
        return down->load() ? PeerHealth::Down : PeerHealth::Up;
    };
    return hooks;
}

TEST(ReplicationAgentHints, SpillsOnDownAndDrainsOnRecovery)
{
    LiveNode peer;
    ClusterConfig cluster;
    cluster.self = "127.0.0.1:1";
    cluster.nodes = {cluster.self, peer.addr};
    cluster.replication = 2;
    auto down = std::make_shared<std::atomic<int>>(1);
    ReplicationAgent agent(cluster, fastAgent(), switchedHealth(down));

    // Down peer: the batch parks in the hint queue, no socket burns.
    agent.enqueue(makeEntry(1, 10.0));
    ASSERT_TRUE(waitUntil([&] {
        return agent.hintDepth() == 1 && agent.queueDepth() == 0;
    }));
    const JsonValue parked = agent.statsJson();
    EXPECT_EQ(parked.getInt("hints_queued", -1), 1);
    EXPECT_EQ(parked.getInt("ship_failures", -1), 0);

    // Recovery: the worker drains hints oldest-first into the peer.
    down->store(0);
    ASSERT_TRUE(waitUntil([&] {
        return peer.service->store().size() == 1 &&
               agent.hintDepth() == 0;
    }));
    const JsonValue drained = agent.statsJson();
    EXPECT_EQ(drained.getInt("hints_shipped", -1), 1);
    EXPECT_GE(drained.getInt("merged_by_peers", -1), 1);
    agent.stop();
}

TEST(ReplicationAgentHints, SustainedDeathOverflowsBoundedHintQueue)
{
    // A peer that stays Down cannot grow hints without bound: the
    // queue holds hint_capacity and drops the oldest, counted.
    ClusterConfig cluster;
    cluster.self = "127.0.0.1:1";
    cluster.nodes = {cluster.self, "127.0.0.1:9"};
    cluster.replication = 2;
    ReplicationConfig rcfg = fastAgent();
    rcfg.hint_capacity = 4;
    auto down = std::make_shared<std::atomic<int>>(1);
    ReplicationAgent agent(cluster, rcfg, switchedHealth(down));

    for (int m = 1; m <= 10; ++m)
        agent.enqueue(makeEntry(m, 10.0 * m));
    ASSERT_TRUE(waitUntil([&] {
        const JsonValue s = agent.statsJson();
        return s.getInt("hints_dropped", 0) >= 6 &&
               agent.hintDepth() == 4;
    }));
    const JsonValue s = agent.statsJson();
    EXPECT_EQ(s.getInt("hints_queued", -1), 4);
    EXPECT_EQ(s.getInt("hints_dropped", -1), 6);
    agent.stop();
}

TEST(ReplicationAgentHints, HintFileCarriesHandoffAcrossRestart)
{
    // SIGKILL-grade restart: agent one spills to the hint file and
    // dies without draining; agent two (same prefix) picks the hints
    // up from disk and delivers them once the peer is reachable.
    LiveNode peer;
    const std::string prefix = tempHintPrefix("restart");
    std::remove(hintFilePath(prefix, peer.addr).c_str());
    ClusterConfig cluster;
    cluster.self = "127.0.0.1:1";
    cluster.nodes = {cluster.self, peer.addr};
    cluster.replication = 2;
    ReplicationConfig rcfg = fastAgent();
    rcfg.hint_path_prefix = prefix;

    auto down = std::make_shared<std::atomic<int>>(1);
    {
        ReplicationAgent agent(cluster, rcfg, switchedHealth(down));
        agent.enqueue(makeEntry(1, 10.0));
        agent.enqueue(makeEntry(2, 20.0));
        ASSERT_TRUE(waitUntil([&] { return agent.hintDepth() == 2; }));
        agent.stop(); // Stop never drains hints: the file keeps them.
    }

    auto up = std::make_shared<std::atomic<int>>(0);
    ReplicationAgent revived(cluster, rcfg, switchedHealth(up));
    EXPECT_EQ(revived.hintDepth(), 2u);
    ASSERT_TRUE(waitUntil(
        [&] { return peer.service->store().size() == 2; }));
    ASSERT_TRUE(waitUntil([&] { return revived.hintDepth() == 0; }));
    revived.stop();
    std::remove(
        hintFilePath(prefix, peer.addr).c_str());
}

} // namespace
} // namespace mse

/**
 * @file
 * MappingStore durability: record round-trip, reload-after-append,
 * torn/corrupted-tail recovery, best-per-key semantics, compaction,
 * and writer serialization under concurrency.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "mapping/mapping_io.hpp"
#include "service/mapping_store.hpp"
#include "test_helpers.hpp"

namespace mse {
namespace {

using test::miniNpu;
using test::tinyConv;
using test::tinyGemm;

/** A legal mapping for (wl, arch): every loop at DRAM. */
Mapping
topMapping(const Workload &wl, const ArchConfig &arch)
{
    return test::allAtTop(wl, arch);
}

std::string
tempStorePath(const char *tag)
{
    return testing::TempDir() + "/mse_store_" + tag + ".jsonl";
}

/** Raw file contents (for tail-corruption surgery). */
std::string
slurp(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string text;
    int c;
    while ((c = std::fgetc(f)) != EOF)
        text += static_cast<char>(c);
    std::fclose(f);
    return text;
}

void
spit(const std::string &path, const std::string &text)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
    std::fclose(f);
}

TEST(MappingStore, EncodeDecodeRoundTrip)
{
    const Workload wl = tinyGemm();
    const ArchConfig arch = miniNpu();
    StoreEntry e;
    e.workload = wl;
    e.arch_sig = "0123456789abcdef";
    e.objective = Objective::Latency;
    e.sparse = true;
    e.mapping = topMapping(wl, arch);
    e.score = 1234.5;
    e.energy_uj = 6.5;
    e.latency_cycles = 190.0;
    e.samples = 777;

    const auto back = MappingStore::decodeEntry(
        MappingStore::encodeEntry(e));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->workload.signature(), wl.signature());
    EXPECT_EQ(back->arch_sig, e.arch_sig);
    EXPECT_EQ(back->objective, Objective::Latency);
    EXPECT_TRUE(back->sparse);
    EXPECT_EQ(serializeMapping(back->mapping),
              serializeMapping(e.mapping));
    EXPECT_EQ(back->score, e.score);
    EXPECT_EQ(back->samples, 777u);
}

TEST(MappingStore, DecodeRejectsGarbage)
{
    EXPECT_FALSE(MappingStore::decodeEntry("").has_value());
    EXPECT_FALSE(MappingStore::decodeEntry("not json").has_value());
    EXPECT_FALSE(MappingStore::decodeEntry("{}").has_value());
    EXPECT_FALSE(
        MappingStore::decodeEntry("{\"v\":2}").has_value());
    // Valid JSON, wrong content.
    EXPECT_FALSE(MappingStore::decodeEntry(
                     "{\"v\":1,\"objective\":\"EDP\",\"arch_sig\":"
                     "\"xyz\",\"workload\":\"junk\",\"mapping\":"
                     "\"junk\",\"score\":1}")
                     .has_value());
}

TEST(MappingStore, RecordLookupAndReload)
{
    const std::string path = tempStorePath("reload");
    std::remove(path.c_str());
    const Workload wl = tinyGemm();
    const ArchConfig arch = miniNpu();
    const Mapping m = topMapping(wl, arch);

    {
        MappingStore store(path);
        EXPECT_EQ(store.size(), 0u);
        EXPECT_TRUE(store.recordIfBetter(wl, arch, Objective::Edp,
                                         false, m, 100.0, 1.0, 10.0,
                                         50));
        // Worse score: rejected, not persisted.
        EXPECT_FALSE(store.recordIfBetter(wl, arch, Objective::Edp,
                                          false, m, 200.0, 2.0, 20.0,
                                          50));
        // Better score: replaces.
        EXPECT_TRUE(store.recordIfBetter(wl, arch, Objective::Edp,
                                         false, m, 80.0, 0.8, 8.0,
                                         60));
        // Same workload, different objective: separate key.
        EXPECT_TRUE(store.recordIfBetter(wl, arch, Objective::Latency,
                                         false, m, 10.0, 1.0, 10.0,
                                         5));
        // Same key but sparse model: separate key again.
        EXPECT_TRUE(store.recordIfBetter(wl, arch, Objective::Edp,
                                         true, m, 55.0, 1.0, 10.0, 5));
        EXPECT_EQ(store.size(), 3u);
    }

    // Fresh instance reloads from disk; best records win.
    MappingStore store(path);
    EXPECT_EQ(store.size(), 3u);
    EXPECT_EQ(store.malformedLines(), 0u);
    const auto hit =
        store.lookup(wl, arch, Objective::Edp, false, 0.0);
    ASSERT_EQ(hit.hit, StoreHit::Exact);
    EXPECT_EQ(hit.entry.score, 80.0);
    EXPECT_EQ(hit.entry.samples, 60u);
    EXPECT_EQ(hit.distance, 0.0);
    EXPECT_EQ(store
                  .lookup(wl, arch, Objective::Latency, false, 0.0)
                  .entry.score,
              10.0);
    EXPECT_EQ(store.lookup(wl, arch, Objective::Edp, true, 0.0)
                  .entry.score,
              55.0);
    std::remove(path.c_str());
}

TEST(MappingStore, NearLookupFindsScaledNeighbor)
{
    MappingStore store; // in-memory
    const ArchConfig arch = miniNpu();
    const Workload small = makeGemm("g", 1, 8, 8, 8);
    const Workload big = makeGemm("g", 1, 16, 8, 8);
    const Workload far = makeGemm("g", 64, 512, 512, 512);
    store.recordIfBetter(small, arch, Objective::Edp, false,
                         topMapping(small, arch), 42.0, 1.0, 10.0, 9);

    const auto near =
        store.lookup(big, arch, Objective::Edp, false, 8.0);
    ASSERT_EQ(near.hit, StoreHit::Near);
    EXPECT_GT(near.distance, 0.0);
    EXPECT_EQ(near.entry.score, 42.0);

    // Beyond the distance budget: miss.
    EXPECT_EQ(store.lookup(far, arch, Objective::Edp, false, 1.0).hit,
              StoreHit::Miss);
    // Different arch: never a neighbor.
    EXPECT_EQ(store
                  .lookup(big, test::flatArch(), Objective::Edp, false,
                          100.0)
                  .hit,
              StoreHit::Miss);
}

TEST(MappingStore, TruncatedTailRecovery)
{
    const std::string path = tempStorePath("torn");
    std::remove(path.c_str());
    const ArchConfig arch = miniNpu();
    const Workload a = tinyGemm();
    const Workload b = tinyConv();
    {
        MappingStore store(path);
        store.recordIfBetter(a, arch, Objective::Edp, false,
                             topMapping(a, arch), 10.0, 1.0, 1.0, 1);
        store.recordIfBetter(b, arch, Objective::Edp, false,
                             topMapping(b, arch), 20.0, 2.0, 2.0, 2);
    }

    // Simulate a crash mid-append: chop the last record in half.
    const std::string full = slurp(path);
    const size_t second_line = full.find('\n') + 1;
    const size_t cut =
        second_line + (full.size() - second_line) / 2;
    spit(path, full.substr(0, cut));

    MappingStore store(path);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.malformedLines(), 1u);
    EXPECT_EQ(store.lookup(a, arch, Objective::Edp, false, 0.0).hit,
              StoreHit::Exact);
    EXPECT_EQ(store.lookup(b, arch, Objective::Edp, false, 0.0).hit,
              StoreHit::Miss);

    // The torn store still accepts appends afterwards.
    EXPECT_TRUE(store.recordIfBetter(b, arch, Objective::Edp, false,
                                     topMapping(b, arch), 20.0, 2.0,
                                     2.0, 2));
    MappingStore reloaded(path);
    EXPECT_EQ(reloaded.size(), 2u);
    std::remove(path.c_str());
}

TEST(MappingStore, CorruptedMiddleLineSkippedRestKept)
{
    const std::string path = tempStorePath("corrupt");
    std::remove(path.c_str());
    const ArchConfig arch = miniNpu();
    const Workload a = tinyGemm();
    const Workload b = tinyConv();
    {
        MappingStore store(path);
        store.recordIfBetter(a, arch, Objective::Edp, false,
                             topMapping(a, arch), 10.0, 1.0, 1.0, 1);
        store.recordIfBetter(b, arch, Objective::Edp, false,
                             topMapping(b, arch), 20.0, 2.0, 2.0, 2);
    }
    // Bit-rot the first line (keep its length so line 2 is intact).
    std::string full = slurp(path);
    full[5] = '#';
    spit(path, full);

    MappingStore store(path);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.malformedLines(), 1u);
    EXPECT_EQ(store.lookup(b, arch, Objective::Edp, false, 0.0).hit,
              StoreHit::Exact);
    std::remove(path.c_str());
}

TEST(MappingStore, CompactRewritesToLiveSet)
{
    const std::string path = tempStorePath("compact");
    std::remove(path.c_str());
    const ArchConfig arch = miniNpu();
    const Workload wl = tinyGemm();
    MappingStore store(path);
    // 10 strictly improving records = 1 live + 9 dead lines.
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(store.recordIfBetter(
            wl, arch, Objective::Edp, false, topMapping(wl, arch),
            100.0 - i, 1.0, 1.0, static_cast<uint64_t>(i)));
    }
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.deadLines(), 9u);
    EXPECT_TRUE(store.compact());
    EXPECT_EQ(store.deadLines(), 0u);

    // Exactly one line remains on disk, and it is the best record.
    const std::string text = slurp(path);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
    MappingStore reloaded(path);
    EXPECT_EQ(reloaded.size(), 1u);
    EXPECT_EQ(
        reloaded.lookup(wl, arch, Objective::Edp, false, 0.0).entry
            .score,
        91.0);
    std::remove(path.c_str());
}

TEST(MappingStore, ConcurrentWritersSerializeThroughLock)
{
    const std::string path = tempStorePath("race");
    std::remove(path.c_str());
    const ArchConfig arch = miniNpu();
    {
        MappingStore store(path);
        // 4 threads x 50 improving writes to 4 distinct keys (by
        // objective/model) plus a contended shared key.
        const Workload wl = tinyGemm();
        auto writer = [&](int tid) {
            const Objective obj = tid % 2 ? Objective::Edp
                                          : Objective::Latency;
            const bool sparse = tid >= 2;
            for (int i = 0; i < 50; ++i) {
                store.recordIfBetter(
                    wl, arch, obj, sparse, topMapping(wl, arch),
                    1000.0 - i, 1.0, 1.0,
                    static_cast<uint64_t>(tid * 1000 + i));
                store.recordIfBetter(wl, arch, Objective::Ed2p, false,
                                     topMapping(wl, arch),
                                     2000.0 - tid * 50 - i, 1.0, 1.0,
                                     1);
            }
        };
        std::vector<std::thread> threads;
        for (int t = 0; t < 4; ++t)
            threads.emplace_back(writer, t);
        for (auto &t : threads)
            t.join();
        EXPECT_EQ(store.size(), 5u);
    }

    // Every appended line must be intact (no interleaved writes), and
    // each key's best must be the global minimum written.
    MappingStore reloaded(path);
    EXPECT_EQ(reloaded.malformedLines(), 0u);
    EXPECT_EQ(reloaded.size(), 5u);
    const Workload wl = tinyGemm();
    EXPECT_EQ(
        reloaded.lookup(wl, arch, Objective::Edp, false, 0.0).entry
            .score,
        951.0);
    EXPECT_EQ(
        reloaded.lookup(wl, arch, Objective::Ed2p, false, 0.0).entry
            .score,
        2000.0 - 3 * 50 - 49);
    std::remove(path.c_str());
}

} // namespace
} // namespace mse

/**
 * @file
 * Event-loop server certification: request pipelining and reply
 * ordering, slow-reader backpressure, connection churn, mid-pipeline
 * disconnects, steady-clock idle deadlines, threaded-vs-event reply
 * parity, executor-pool determinism, the poll(2) fallback backend,
 * and fault injection at the event loop's sys_io sites.
 */
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/json.hpp"
#include "service/net.hpp"
#include "service/poller.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "test_helpers.hpp"
#include "service/error_codes.hpp"

namespace mse {
namespace {

int64_t
nowMs()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               clock::now().time_since_epoch())
        .count();
}

/** Configures the global fault injector for one test, then clears. */
class GlobalFaultGuard
{
  public:
    explicit GlobalFaultGuard(const std::string &config)
    {
        std::string err;
        ok_ = FaultInjector::global().configure(config, &err);
        EXPECT_TRUE(ok_) << err;
    }
    ~GlobalFaultGuard() { FaultInjector::global().clear(); }
    bool ok() const { return ok_; }

  private:
    bool ok_ = false;
};

/** One search request line against an inline (non-registry) arch.
 *  `extra` is appended inside the object: ",\"max_samples\":40". */
std::string
searchLine(const std::string &extra = "")
{
    return std::string(
               "{\"type\":\"search\",\"workload\":{\"gemm\":"
               "{\"b\":1,\"m\":8,\"k\":8,\"n\":8}},"
               "\"arch\":{\"npu\":{\"l2_bytes\":8192,"
               "\"l1_bytes\":128,\"num_pes\":4,"
               "\"alus_per_pe\":2}}") +
        extra + "}";
}

/** Live loopback server; per-test knobs via the two configs. */
class EventServerTest : public ::testing::Test
{
  protected:
    void startServer(ServerConfig ncfg = {}, ServiceConfig scfg = {})
    {
        if (scfg.default_samples == ServiceConfig().default_samples)
            scfg.default_samples = 120;
        service_ = std::make_unique<MseService>(scfg);
        server_ = std::make_unique<ServiceServer>(*service_, ncfg);
        std::string err;
        ASSERT_TRUE(server_->start(&err)) << err;
    }

    void TearDown() override
    {
        if (server_)
            server_->stop();
    }

    int connect()
    {
        std::string err;
        const int fd = connectTcp("127.0.0.1", server_->port(), &err);
        EXPECT_GE(fd, 0) << err;
        return fd;
    }

    /** Read `n` reply lines, parsed; fails the test on a short read. */
    std::vector<JsonValue> readReplies(LineReader &r, size_t n,
                                       int timeout_ms = 120000)
    {
        std::vector<JsonValue> out;
        for (size_t i = 0; i < n; ++i) {
            std::string line;
            const auto st = r.readLine(&line, timeout_ms);
            EXPECT_EQ(st, LineReader::Status::Line)
                << "reply " << i << " of " << n;
            if (st != LineReader::Status::Line)
                break;
            const auto doc = parseJson(line);
            EXPECT_TRUE(doc.has_value()) << line;
            out.push_back(doc ? *doc : JsonValue());
        }
        return out;
    }

    std::unique_ptr<MseService> service_;
    std::unique_ptr<ServiceServer> server_;
};

// ------------------------------------------------------------ pipelining

TEST_F(EventServerTest, PipelinedRepliesArriveInRequestOrder)
{
    startServer();
    const int fd = connect();
    LineReader reader(fd);

    // Mixed burst, sent before reading anything. Each search carries a
    // distinct max_samples so its reply is identifiable: replies must
    // come back in request order even though some finish instantly
    // (ping/stats) while searches run on an executor.
    const std::string burst = searchLine(",\"max_samples\":40") + "\n" +
        "{\"type\":\"ping\"}\n" + searchLine(",\"max_samples\":80") +
        "\n" + "{\"type\":\"stats\"}\n" +
        searchLine(",\"max_samples\":120") + "\n" +
        "{\"type\":\"ping\"}\n";
    ASSERT_TRUE(sendAll(fd, burst.data(), burst.size()));

    const auto replies = readReplies(reader, 6);
    ASSERT_EQ(replies.size(), 6u);
    EXPECT_EQ(replies[0].getInt("samples", -1), 40);
    EXPECT_EQ(replies[1].getString("type", ""), "ping");
    EXPECT_EQ(replies[2].getInt("samples", -1), 80);
    EXPECT_NE(replies[3].find("stats"), nullptr);
    EXPECT_EQ(replies[4].getInt("samples", -1), 120);
    EXPECT_EQ(replies[5].getString("type", ""), "ping");
    for (const auto &r : replies)
        EXPECT_TRUE(r.getBool("ok", false));
    closeSocket(fd);
}

TEST_F(EventServerTest, PipelinedPingFloodCompletesInOrder)
{
    // 100 pings in one burst crosses the default max_pipeline (64), so
    // this also exercises the pause -> flush -> resume framing path.
    startServer();
    const int fd = connect();
    LineReader reader(fd);
    std::string burst;
    for (int i = 0; i < 100; ++i)
        burst += "{\"type\":\"ping\"}\n";
    ASSERT_TRUE(sendAll(fd, burst.data(), burst.size()));
    const auto replies = readReplies(reader, 100);
    ASSERT_EQ(replies.size(), 100u);
    for (const auto &r : replies) {
        EXPECT_TRUE(r.getBool("ok", false));
        EXPECT_EQ(r.getString("type", ""), "ping");
    }
    closeSocket(fd);
}

TEST_F(EventServerTest, PipelineCapPausesAndResumesSearchStream)
{
    ServerConfig ncfg;
    ncfg.max_pipeline = 2; // tiny in-flight cap
    startServer(ncfg);
    const int fd = connect();
    LineReader reader(fd);
    std::string burst;
    for (int i = 0; i < 5; ++i)
        burst += searchLine(",\"max_samples\":" +
                            std::to_string(20 + 10 * i)) +
            "\n";
    ASSERT_TRUE(sendAll(fd, burst.data(), burst.size()));
    const auto replies = readReplies(reader, 5);
    ASSERT_EQ(replies.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(replies[i].getBool("ok", false));
        EXPECT_EQ(replies[i].getInt("samples", -1), 20 + 10 * i);
    }
    closeSocket(fd);
}

// ---------------------------------------------------------- backpressure

TEST_F(EventServerTest, SlowReaderDoesNotBlockOtherConnections)
{
    ServerConfig ncfg;
    ncfg.max_buffered_bytes = 2048; // pause reads quickly
    startServer(ncfg);

    // The slow connection floods stats requests and reads nothing:
    // replies pile up in the kernel socket buffer and then in the
    // server's out buffer until backpressure pauses that connection.
    const int slow = connect();
    std::string burst;
    const int kStats = 400;
    for (int i = 0; i < kStats; ++i)
        burst += "{\"type\":\"stats\"}\n";
    ASSERT_TRUE(sendAll(slow, burst.data(), burst.size()));

    // Meanwhile a well-behaved connection stays responsive: the event
    // loop never blocks on the stalled peer.
    const int fast = connect();
    LineReader fast_reader(fast);
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(sendLine(fast, "{\"type\":\"ping\"}"));
        std::string line;
        ASSERT_EQ(fast_reader.readLine(&line, 20000),
                  LineReader::Status::Line)
            << "loop stalled behind the slow reader";
    }
    closeSocket(fast);

    // The slow reader finally drains: every reply arrives, in order,
    // none lost to the pause/resume cycles.
    LineReader slow_reader(slow);
    const auto replies = readReplies(slow_reader, kStats);
    ASSERT_EQ(replies.size(), static_cast<size_t>(kStats));
    for (const auto &r : replies) {
        EXPECT_TRUE(r.getBool("ok", false));
        EXPECT_NE(r.find("stats"), nullptr);
    }
    closeSocket(slow);
}

// ----------------------------------------------------------- disconnect

TEST_F(EventServerTest, MidPipelineDisconnectCancelsOnlyThatConnection)
{
    startServer();
    // Connection A pipelines two huge searches; the first occupies the
    // (single) executor, the second waits in the service queue.
    const int a = connect();
    const std::string burst =
        searchLine(",\"max_samples\":50000000") + "\n" +
        searchLine(",\"max_samples\":50000000,\"seed\":2") + "\n";
    ASSERT_TRUE(sendAll(a, burst.data(), burst.size()));
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    // Connection B queues a small search behind them.
    const int b = connect();
    LineReader reader_b(b);
    ASSERT_TRUE(sendLine(b, searchLine(",\"max_samples\":100")));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // A vanishes: both of its searches must be cancelled (the running
    // one stops at the next generation boundary, freeing the
    // executor), and B's search must still complete normally.
    closeSocket(a);
    std::string line;
    ASSERT_EQ(reader_b.readLine(&line, 60000), LineReader::Status::Line);
    const auto doc = parseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_TRUE(doc->getBool("ok", false)) << line;
    EXPECT_EQ(doc->getInt("samples", -1), 100);
    closeSocket(b);

    // And the server keeps serving new connections.
    const int c = connect();
    LineReader reader_c(c);
    ASSERT_TRUE(sendLine(c, "{\"type\":\"ping\"}"));
    ASSERT_EQ(reader_c.readLine(&line, 20000), LineReader::Status::Line);
    closeSocket(c);
}

// -------------------------------------------------------- idle deadlines

TEST_F(EventServerTest, IdleTimeoutFiresNearConfiguredDeadline)
{
    ServerConfig ncfg;
    ncfg.io_timeout_ms = 400;
    startServer(ncfg);
    const int fd = connect();
    LineReader reader(fd);
    const int64_t t0 = nowMs();
    std::string line;
    ASSERT_EQ(reader.readLine(&line, 30000), LineReader::Status::Line);
    const int64_t elapsed = nowMs() - t0;
    const auto doc = parseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_EQ(doc->find("error")->getString("code", ""), wire_errors::kIdleTimeout);
    // Absolute steady-clock deadlines: never early (strict bound),
    // and not late by more than scheduling noise (generous bound —
    // the old implementation's coarse poll-tick accounting could
    // overshoot by whole multiples of the timeout).
    EXPECT_GE(elapsed, 350) << "timeout fired early";
    EXPECT_LE(elapsed, 2900) << "timeout fired far too late";
    const auto st = reader.readLine(&line, 30000);
    EXPECT_TRUE(st == LineReader::Status::Closed ||
                st == LineReader::Status::Error);
    closeSocket(fd);
}

TEST_F(EventServerTest, ActivityResetsIdleDeadline)
{
    ServerConfig ncfg;
    ncfg.io_timeout_ms = 600;
    startServer(ncfg);
    const int fd = connect();
    LineReader reader(fd);
    std::string line;
    // Two pings 400 ms apart: each one pushes the 600 ms deadline
    // out, so the connection survives well past one timeout span.
    for (int i = 0; i < 2; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        ASSERT_TRUE(sendLine(fd, "{\"type\":\"ping\"}"));
        ASSERT_EQ(reader.readLine(&line, 20000),
                  LineReader::Status::Line)
            << "connection died despite activity";
    }
    // Silence now: the timeout fires relative to the *last* activity.
    const int64_t t0 = nowMs();
    ASSERT_EQ(reader.readLine(&line, 30000), LineReader::Status::Line);
    const auto doc = parseJson(line);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("error")->getString("code", ""), wire_errors::kIdleTimeout);
    EXPECT_GE(nowMs() - t0, 550);
    closeSocket(fd);
}

TEST_F(EventServerTest, InFlightSearchExemptsConnectionFromIdle)
{
    ServerConfig ncfg;
    ncfg.io_timeout_ms = 300;
    startServer(ncfg);
    const int fd = connect();
    LineReader reader(fd);
    // A search that outlives the idle timeout via its own deadline:
    // the connection is waiting on the server, not idling, so it must
    // get the search reply, never an idle_timeout.
    ASSERT_TRUE(sendLine(
        fd,
        searchLine(",\"max_samples\":50000000,\"deadline_ms\":1200")));
    std::string line;
    ASSERT_EQ(reader.readLine(&line, 60000), LineReader::Status::Line);
    const auto doc = parseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_TRUE(doc->getBool("ok", false)) << line;
    EXPECT_TRUE(doc->getBool("timed_out", false));
    closeSocket(fd);
}

// ------------------------------------------------------- hostile framing

TEST_F(EventServerTest, OversizedIncompleteLineRejectedAndClosed)
{
    ServerConfig ncfg;
    ncfg.max_line_bytes = 1024;
    startServer(ncfg);
    const int fd = connect();
    LineReader reader(fd);
    // 2 KiB with no newline: the line can never complete within the
    // cap, so the server must reject it without waiting for one.
    const std::string junk(2048, 'x');
    ASSERT_TRUE(sendAll(fd, junk.data(), junk.size()));
    std::string line;
    ASSERT_EQ(reader.readLine(&line, 20000), LineReader::Status::Line);
    const auto doc = parseJson(line);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("error")->getString("code", ""),
              wire_errors::kRequestTooLarge);
    const auto st = reader.readLine(&line, 20000);
    EXPECT_TRUE(st == LineReader::Status::Closed ||
                st == LineReader::Status::Error);
    closeSocket(fd);
}

TEST_F(EventServerTest, EmptyLinesAreIgnored)
{
    startServer();
    const int fd = connect();
    LineReader reader(fd);
    const std::string burst = "\n\n\n{\"type\":\"ping\"}\n";
    ASSERT_TRUE(sendAll(fd, burst.data(), burst.size()));
    std::string line;
    ASSERT_EQ(reader.readLine(&line, 20000), LineReader::Status::Line);
    const auto doc = parseJson(line);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->getString("type", ""), "ping");
    closeSocket(fd);
}

TEST_F(EventServerTest, MaxConnectionsRefusedWithRetryHint)
{
    ServerConfig ncfg;
    ncfg.max_connections = 2;
    startServer(ncfg);
    const int c1 = connect();
    const int c2 = connect();
    LineReader r1(c1), r2(c2);
    std::string line;
    // Round-trip both so they are registered before the third arrives.
    ASSERT_TRUE(sendLine(c1, "{\"type\":\"ping\"}"));
    ASSERT_EQ(r1.readLine(&line, 20000), LineReader::Status::Line);
    ASSERT_TRUE(sendLine(c2, "{\"type\":\"ping\"}"));
    ASSERT_EQ(r2.readLine(&line, 20000), LineReader::Status::Line);

    const int c3 = connect();
    LineReader r3(c3);
    ASSERT_EQ(r3.readLine(&line, 20000), LineReader::Status::Line);
    const auto doc = parseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_EQ(doc->find("error")->getString("code", ""),
              wire_errors::kTooManyConnections);
    EXPECT_GT(doc->find("error")->getInt("retry_after_ms", 0), 0);
    const auto st = r3.readLine(&line, 20000);
    EXPECT_TRUE(st == LineReader::Status::Closed ||
                st == LineReader::Status::Error);
    closeSocket(c3);

    // Freeing a slot re-opens the door.
    closeSocket(c1);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const int c4 = connect();
    LineReader r4(c4);
    ASSERT_TRUE(sendLine(c4, "{\"type\":\"ping\"}"));
    EXPECT_EQ(r4.readLine(&line, 20000), LineReader::Status::Line);
    closeSocket(c4);
    closeSocket(c2);
}

// ------------------------------------------------------------------ soak

TEST_F(EventServerTest, ConnectionChurnSoakWhileSearchRuns)
{
    ServerConfig ncfg;
    ncfg.max_connections = 64;
    startServer(ncfg);

    // A long search holds an executor for the whole soak.
    const int busy = connect();
    LineReader busy_reader(busy);
    ASSERT_TRUE(sendLine(
        busy,
        searchLine(",\"max_samples\":50000000,\"deadline_ms\":8000")));

    // Waves of short-lived connections churn the fd space: accept,
    // one round trip, close. Ids (not fds) key the completion path,
    // so heavy fd reuse must not misroute replies.
    const int kWaves = 8, kPerWave = 15;
    int pings_ok = 0;
    for (int w = 0; w < kWaves; ++w) {
        std::vector<int> fds;
        for (int i = 0; i < kPerWave; ++i)
            fds.push_back(connect());
        for (const int fd : fds) {
            LineReader r(fd);
            std::string line;
            ASSERT_TRUE(sendLine(fd, "{\"type\":\"ping\"}"));
            ASSERT_EQ(r.readLine(&line, 30000),
                      LineReader::Status::Line);
            ++pings_ok;
            closeSocket(fd);
        }
    }
    EXPECT_EQ(pings_ok, kWaves * kPerWave);

    // The long search still completes and its reply routes home.
    std::string line;
    ASSERT_EQ(busy_reader.readLine(&line, 60000),
              LineReader::Status::Line);
    const auto doc = parseJson(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_TRUE(doc->getBool("ok", false)) << line;
    closeSocket(busy);

    const JsonValue stats = service_->statsJson();
    EXPECT_GE(stats.find("requests")->getInt("ping", 0),
              kWaves * kPerWave);
}

// ------------------------------------------------- backend reply parity

/** Zero the wall-clock field so replies compare byte-for-byte. */
std::string
maskWallMs(std::string s)
{
    const std::string key = "\"wall_ms\":";
    const size_t at = s.find(key);
    if (at == std::string::npos)
        return s;
    size_t end = at + key.size();
    while (end < s.size() && s[end] != ',' && s[end] != '}')
        ++end;
    return s.substr(0, at + key.size()) + "0" + s.substr(end);
}

std::vector<std::string>
replyStreamFor(ServerConfig::Backend backend)
{
    ServiceConfig scfg;
    scfg.default_samples = 120;
    MseService service(scfg);
    ServerConfig ncfg;
    ncfg.backend = backend;
    ncfg.max_line_bytes = 2048;
    ServiceServer server(service, ncfg);
    std::string err;
    EXPECT_TRUE(server.start(&err)) << err;

    std::string serr;
    const int fd = connectTcp("127.0.0.1", server.port(), &serr);
    EXPECT_GE(fd, 0) << serr;
    // The same hostile-and-friendly stream for both backends; the
    // oversized line last, because it costs the session. The junk
    // line is 2x the cap: the threaded backend's LineReader only
    // enforces the cap on its unframed buffer, so a complete
    // oversized line must overflow that buffer to be rejected there
    // (the event backend rejects any over-cap framed line).
    const std::string stream = "{\"type\":\"ping\"}\n" + //
        std::string("{oops\n") +                         //
        "{\"type\":\"bogus\"}\n" +                       //
        searchLine(",\"max_samples\":90,\"seed\":5,"
                   "\"warm_start\":false") +
        "\n" +
        searchLine(",\"max_samples\":90,\"seed\":5,"
                   "\"warm_start\":false") +
        "\n" + std::string(4096, 'x') + "\n";
    EXPECT_TRUE(sendAll(fd, stream.data(), stream.size()));

    std::vector<std::string> replies;
    LineReader reader(fd);
    for (int i = 0; i < 6; ++i) {
        std::string line;
        if (reader.readLine(&line, 120000) != LineReader::Status::Line)
            break;
        replies.push_back(maskWallMs(line));
    }
    closeSocket(fd);
    server.stop();
    return replies;
}

TEST(ServerBackendParity, EventAndThreadedReplyStreamsAreByteIdentical)
{
    const auto event = replyStreamFor(ServerConfig::Backend::Event);
    const auto threaded =
        replyStreamFor(ServerConfig::Backend::Threaded);
    ASSERT_EQ(event.size(), 6u);
    ASSERT_EQ(threaded.size(), 6u);
    for (size_t i = 0; i < event.size(); ++i)
        EXPECT_EQ(event[i], threaded[i]) << "reply " << i;
    // Sanity on the stream shape itself.
    EXPECT_NE(event[0].find("\"ping\""), std::string::npos);
    EXPECT_NE(event[1].find(wire_errors::kBadJson), std::string::npos);
    EXPECT_NE(event[2].find(wire_errors::kBadRequest), std::string::npos);
    EXPECT_NE(event[3].find("\"ok\":true"), std::string::npos);
    EXPECT_NE(event[5].find(wire_errors::kRequestTooLarge), std::string::npos);
}

// ------------------------------------------------------- executor pool

TEST(ExecutorPool, ResultsBitIdenticalAcrossPoolSizes)
{
    // The per-request determinism contract: any executor count, same
    // request, same bits. Distinct workloads + warm_start=false keep
    // the requests independent of store mutation order.
    auto makeReq = [](int m) {
        SearchRequest req;
        req.workload = makeGemm("pool_gemm_" + std::to_string(m), 4, m,
                                64, 64);
        req.arch = test::miniNpu();
        req.max_samples = 300;
        req.seed = 77;
        req.seed_set = true;
        req.warm_start = false;
        return req;
    };
    auto runAll = [&](size_t executors) {
        ServiceConfig cfg;
        cfg.executors = executors;
        MseService service(cfg);
        std::vector<MseService::Ticket> tickets;
        for (int m : {32, 48, 64, 80})
            tickets.push_back(service.submit(makeReq(m)));
        std::vector<SearchReply> replies;
        for (auto &t : tickets)
            replies.push_back(t.reply.get());
        return replies;
    };
    const auto one = runAll(1);
    const auto four = runAll(4);
    ASSERT_EQ(one.size(), four.size());
    for (size_t i = 0; i < one.size(); ++i) {
        ASSERT_TRUE(one[i].ok) << one[i].error_message;
        ASSERT_TRUE(four[i].ok) << four[i].error_message;
        EXPECT_EQ(one[i].score, four[i].score) << i;
        EXPECT_EQ(one[i].mapping, four[i].mapping) << i;
        EXPECT_EQ(one[i].samples, four[i].samples) << i;
        EXPECT_EQ(one[i].energy_uj, four[i].energy_uj) << i;
        EXPECT_EQ(one[i].latency_cycles, four[i].latency_cycles) << i;
    }
}

TEST(ExecutorPool, TwoExecutorsBothDequeue)
{
    // queue_capacity=1 with two executors: two long searches are both
    // dequeued (one per worker), a third waits in the queue, a fourth
    // is shed. A single executor would shed the *third* instead.
    ServiceConfig cfg;
    cfg.executors = 2;
    cfg.queue_capacity = 1;
    // The long searches must only ever end on cancel: if they hit the
    // service's default request deadline instead, an executor frees
    // up, d gets *queued* rather than shed, and then d itself expires
    // as deadline_exceeded (observed on slow boxes with the 300s
    // default).
    cfg.default_deadline_seconds = 24.0 * 3600.0;
    MseService service(cfg);
    auto longReq = [] {
        SearchRequest req;
        req.workload = makeGemm("pool_long", 8, 64, 64, 64);
        req.arch = test::miniNpu();
        req.max_samples = 50000000;
        return req;
    };
    // With a one-slot queue even the first two submits can race the
    // executors (b is shed if a has not been popped yet): retry until
    // accepted. An accepted ticket's future is not immediately ready.
    auto submitAccepted = [&] {
        for (int tries = 0; tries < 2000; ++tries) {
            auto t = service.submit(longReq());
            if (t.reply.wait_for(std::chrono::seconds(0)) !=
                std::future_status::ready)
                return t;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        return MseService::Ticket{}; // .reply invalid => assert below
    };
    auto a = submitAccepted();
    auto b = submitAccepted();
    // Whatever the asserts below decide, the near-infinite searches
    // must be released: ~MseService drains running work, so a leaked
    // ticket would hang the test binary for the full deadline.
    struct Release
    {
        std::vector<CancelTokenPtr> toks;
        ~Release()
        {
            for (auto &t : toks)
                if (t)
                    t->requestCancel();
        }
    } release;
    release.toks = {a.cancel, b.cancel};
    ASSERT_TRUE(a.reply.valid() && b.reply.valid())
        << "long submits never got accepted";
    // Wait until both workers actually hold a search (stats exposes a
    // live queue snapshot). A fixed sleep here flakes on slow loaded
    // boxes, and probing with throwaway submits races the executors.
    bool both_running = false;
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (std::chrono::steady_clock::now() < give_up) {
        const JsonValue stats = service.statsJson();
        const JsonValue *q = stats.find("queue");
        ASSERT_NE(q, nullptr);
        if (q->getInt("running", 0) == 2 && q->getInt("depth", 0) == 0) {
            both_running = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(both_running)
        << "executors never dequeued both long searches";
    auto c = service.submit(longReq()); // fills the queue
    release.toks.push_back(c.cancel);
    auto d = service.submit(longReq()); // shed
    release.toks.push_back(d.cancel);
    const SearchReply rd = d.reply.get();
    EXPECT_FALSE(rd.ok);
    EXPECT_EQ(rd.error_code, wire_errors::kQueueFull);
    a.cancel->requestCancel();
    b.cancel->requestCancel();
    c.cancel->requestCancel();
    a.reply.wait();
    b.reply.wait();
    const SearchReply rc = c.reply.get();
    EXPECT_NE(rc.error_code, wire_errors::kQueueFull);
}

TEST(ExecutorPool, StatsReportExecutorCount)
{
    ServiceConfig cfg;
    cfg.executors = 3;
    MseService service(cfg);
    EXPECT_EQ(service.executors(), 3u);
    EXPECT_EQ(service.statsJson().find("config")->getInt("executors", 0),
              3);
}

TEST(ExecutorPool, DefaultExecutorsHonorsEnvAndClamps)
{
    // Save and restore: other tests must not see our env edits.
    const char *old = std::getenv("MSE_EXECUTORS");
    const std::string saved = old ? old : "";
    setenv("MSE_EXECUTORS", "7", 1);
    EXPECT_EQ(MseService::defaultExecutors(), 7u);
    setenv("MSE_EXECUTORS", "0", 1);
    EXPECT_EQ(MseService::defaultExecutors(), 1u); // clamped up
    setenv("MSE_EXECUTORS", "9999", 1);
    EXPECT_EQ(MseService::defaultExecutors(), 64u); // clamped down
    unsetenv("MSE_EXECUTORS");
    EXPECT_GE(MseService::defaultExecutors(), 1u); // hw concurrency
    if (!saved.empty())
        setenv("MSE_EXECUTORS", saved.c_str(), 1);
}

// -------------------------------------------------------- poll fallback

TEST_F(EventServerTest, PollBackendServesPipelinedRequests)
{
    ServerConfig ncfg;
    ncfg.poller = Poller::Kind::Poll;
    startServer(ncfg);
    const int fd = connect();
    LineReader reader(fd);
    const std::string burst = "{\"type\":\"ping\"}\n" +
        searchLine(",\"max_samples\":60") + "\n" +
        "{\"type\":\"ping\"}\n";
    ASSERT_TRUE(sendAll(fd, burst.data(), burst.size()));
    const auto replies = readReplies(reader, 3);
    ASSERT_EQ(replies.size(), 3u);
    EXPECT_EQ(replies[0].getString("type", ""), "ping");
    EXPECT_EQ(replies[1].getInt("samples", -1), 60);
    EXPECT_EQ(replies[2].getString("type", ""), "ping");
    closeSocket(fd);
}

TEST(PollerUnit, BothBackendsReportReadAndWriteReadiness)
{
    std::vector<Poller::Kind> kinds = {Poller::Kind::Poll};
#ifdef __linux__
    kinds.push_back(Poller::Kind::Epoll);
#endif
    for (const Poller::Kind kind : kinds) {
        SCOPED_TRACE(kind == Poller::Kind::Poll ? "poll" : "epoll");
        Poller poller;
        std::string err;
        ASSERT_TRUE(poller.init(kind, &err)) << err;
        EXPECT_EQ(poller.usingEpoll(), kind == Poller::Kind::Epoll);

        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        std::vector<Poller::Event> events;

        // Empty pipe: read interest, no events.
        ASSERT_TRUE(poller.add(fds[0], true, false));
        EXPECT_EQ(poller.wait(0, &events), 0);

        // One byte in: readable fires.
        ASSERT_EQ(::write(fds[1], "x", 1), 1);
        ASSERT_EQ(poller.wait(1000, &events), 1);
        EXPECT_EQ(events[0].fd, fds[0]);
        EXPECT_TRUE(events[0].readable);
        EXPECT_FALSE(events[0].writable);

        // Interest cleared: the pending byte no longer wakes us.
        ASSERT_TRUE(poller.mod(fds[0], false, false));
        EXPECT_EQ(poller.wait(0, &events), 0);

        // Write side: an empty pipe is immediately writable.
        ASSERT_TRUE(poller.add(fds[1], false, true));
        ASSERT_GE(poller.wait(1000, &events), 1);
        bool saw_writable = false;
        for (const auto &e : events)
            saw_writable |= (e.fd == fds[1] && e.writable);
        EXPECT_TRUE(saw_writable);

        poller.del(fds[0]);
        poller.del(fds[1]);
        EXPECT_EQ(poller.wait(0, &events), 0);
        ::close(fds[0]);
        ::close(fds[1]);
    }
}

// ------------------------------------------------------ fault injection

TEST_F(EventServerTest, ServesThroughEintrStormOnWait)
{
    // EINTR on every second wait, whichever readiness backend is
    // active: sys_io absorbs the interrupts against its deadline and
    // the loop keeps serving. (every:1 would also work — the wait
    // then degrades to a 0-return at each deadline — but every:2
    // exercises the interleaving of real and injected outcomes.)
    GlobalFaultGuard guard(
        "server.epoll.wait:every:2:EINTR,"
        "server.poll.wait:every:2:EINTR");
    ASSERT_TRUE(guard.ok());
    startServer();
    const int fd = connect();
    LineReader reader(fd);
    std::string line;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(sendLine(fd, "{\"type\":\"ping\"}"));
        ASSERT_EQ(reader.readLine(&line, 30000),
                  LineReader::Status::Line)
            << "ping " << i;
    }
    ASSERT_TRUE(sendLine(fd, searchLine(",\"max_samples\":50")));
    ASSERT_EQ(reader.readLine(&line, 60000), LineReader::Status::Line);
    const auto doc = parseJson(line);
    ASSERT_TRUE(doc.has_value());
    EXPECT_TRUE(doc->getBool("ok", false)) << line;
    closeSocket(fd);
    EXPECT_GT(FaultInjector::global().totalInjected(), 0u);
}

TEST_F(EventServerTest, EagainOnSendRetriesViaWriteReadiness)
{
    // A transient EAGAIN mid-reply: flushOut must arm write interest
    // and finish the (pipelined) replies when the socket reports
    // writable again — no bytes lost, order preserved.
    GlobalFaultGuard guard("server.send:once:1:EAGAIN");
    ASSERT_TRUE(guard.ok());
    startServer();
    const int fd = connect();
    LineReader reader(fd);
    std::string burst;
    for (int i = 0; i < 5; ++i)
        burst += "{\"type\":\"ping\"}\n";
    ASSERT_TRUE(sendAll(fd, burst.data(), burst.size()));
    const auto replies = readReplies(reader, 5, 30000);
    ASSERT_EQ(replies.size(), 5u);
    for (const auto &r : replies)
        EXPECT_EQ(r.getString("type", ""), "ping");
    closeSocket(fd);
    EXPECT_EQ(FaultInjector::global().injected("server.send"), 1u);
}

TEST_F(EventServerTest, AcceptFailureRecoversOnNextReadiness)
{
    // One injected accept failure: the pending connection stays in
    // the backlog, level-triggered readiness re-reports it, and the
    // retry accepts it.
    GlobalFaultGuard guard("server.accept:once:1:EIO");
    ASSERT_TRUE(guard.ok());
    startServer();
    const int fd = connect();
    LineReader reader(fd);
    std::string line;
    ASSERT_TRUE(sendLine(fd, "{\"type\":\"ping\"}"));
    ASSERT_EQ(reader.readLine(&line, 30000), LineReader::Status::Line);
    closeSocket(fd);
    EXPECT_EQ(FaultInjector::global().injected("server.accept"), 1u);
}

TEST_F(EventServerTest, RecvFailureDropsOnlyThatConnection)
{
    // An injected ECONNRESET on the first read: the server drops that
    // one connection and keeps serving everyone else.
    GlobalFaultGuard guard("server.recv:once:1:ECONNRESET");
    ASSERT_TRUE(guard.ok());
    startServer();
    const int fd = connect();
    LineReader reader(fd);
    std::string line;
    ASSERT_TRUE(sendLine(fd, "{\"type\":\"ping\"}"));
    // The drop arrives as a FIN (Closed) or, since our request bytes
    // die unread in the server's kernel buffer, as an RST (Error).
    const auto st = reader.readLine(&line, 30000);
    EXPECT_TRUE(st == LineReader::Status::Closed ||
                st == LineReader::Status::Error)
        << static_cast<int>(st);
    closeSocket(fd);
    EXPECT_EQ(FaultInjector::global().injected("server.recv"), 1u);

    const int fd2 = connect();
    LineReader reader2(fd2);
    ASSERT_TRUE(sendLine(fd2, "{\"type\":\"ping\"}"));
    EXPECT_EQ(reader2.readLine(&line, 30000), LineReader::Status::Line);
    closeSocket(fd2);
}

TEST_F(EventServerTest, WakePipeEintrIsAbsorbed)
{
    // EINTR on the completion-wake drain: sys_io retries inside
    // sysRead, so wakeups are never lost and every reply arrives.
    GlobalFaultGuard guard("server.wake.read:every:2:EINTR");
    ASSERT_TRUE(guard.ok());
    startServer();
    const int fd = connect();
    LineReader reader(fd);
    std::string line;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(sendLine(fd, searchLine(",\"max_samples\":40")));
        ASSERT_EQ(reader.readLine(&line, 60000),
                  LineReader::Status::Line)
            << "search " << i;
        const auto doc = parseJson(line);
        ASSERT_TRUE(doc.has_value());
        EXPECT_TRUE(doc->getBool("ok", false)) << line;
    }
    closeSocket(fd);
    EXPECT_GT(FaultInjector::global().injected("server.wake.read"), 0u);
}

// --------------------------------------- net-layer fault injection

TEST(NetFaults, AcceptPollFailureReportsError)
{
    std::string err;
    const int lfd = listenTcp(0, &err);
    ASSERT_GE(lfd, 0) << err;
    {
        GlobalFaultGuard guard("net.accept.poll:once:1:EIO");
        EXPECT_EQ(acceptWithTimeout(lfd, 50), -2);
    }
    // Clean path: no pending connection reads as a timeout.
    EXPECT_EQ(acceptWithTimeout(lfd, 10), -1);
    closeSocket(lfd);
}

TEST(NetFaults, AcceptFailureLeavesConnectionAcceptable)
{
    // accept(2) fails after readiness (EMFILE): the pending
    // connection stays in the backlog and a clean retry accepts it.
    std::string err;
    const int lfd = listenTcp(0, &err);
    ASSERT_GE(lfd, 0) << err;
    const int cfd = connectTcp("127.0.0.1", boundPort(lfd), &err);
    ASSERT_GE(cfd, 0) << err;
    {
        GlobalFaultGuard guard("net.accept:once:1:EMFILE");
        EXPECT_EQ(acceptWithTimeout(lfd, 5000), -2);
        EXPECT_EQ(FaultInjector::global().injected("net.accept"), 1u);
    }
    const int sfd = acceptWithTimeout(lfd, 5000);
    EXPECT_GE(sfd, 0);
    closeSocket(sfd);
    closeSocket(cfd);
    closeSocket(lfd);
}

TEST(NetFaults, PeekFailureReadsAsPeerClosed)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    EXPECT_FALSE(peerClosed(fds[0])); // Healthy: EAGAIN, still open.
    {
        // A hard error on the peek (not EAGAIN) means the socket is
        // unusable: report the peer as gone.
        GlobalFaultGuard guard("net.peek:once:1:ECONNRESET");
        EXPECT_TRUE(peerClosed(fds[0]));
    }
    EXPECT_FALSE(peerClosed(fds[0]));
    closeSocket(fds[0]);
    closeSocket(fds[1]);
}

TEST(NetFaults, PollFailureSurfacesAsReaderError)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    LineReader reader(fds[0]);
    GlobalFaultGuard guard("net.poll:once:1:EIO");
    std::string line;
    EXPECT_EQ(reader.readLine(&line, 100), LineReader::Status::Error);
    closeSocket(fds[0]);
    closeSocket(fds[1]);
}

TEST(NetFaults, RecvFailureSurfacesAsReaderError)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    // Data is pending, so poll reports readable; the recv then fails.
    ASSERT_TRUE(sendAll(fds[1], "x\n", 2));
    LineReader reader(fds[0]);
    GlobalFaultGuard guard("net.recv:once:1:ECONNRESET");
    std::string line;
    EXPECT_EQ(reader.readLine(&line, 1000), LineReader::Status::Error);
    closeSocket(fds[0]);
    closeSocket(fds[1]);
}

TEST(NetFaults, SendFailureReportsFalseThenRecovers)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    {
        GlobalFaultGuard guard("net.send:once:1:EPIPE");
        EXPECT_FALSE(sendLine(fds[0], "{\"type\":\"ping\"}"));
    }
    EXPECT_TRUE(sendLine(fds[0], "{\"type\":\"ping\"}"));
    closeSocket(fds[0]);
    closeSocket(fds[1]);
}

#ifdef __linux__

void
sigusr1Noop(int)
{
}

TEST(NetFaults, ConnectEintrRecoveryPathSurfacesPollFailure)
{
    // connectTcp finishes a signal-interrupted handshake by polling
    // for writability (site net.connect.poll). Reach that branch
    // deterministically: fill a backlog-0 listener so a blocking
    // connect hangs in SYN-retry, then interrupt it with a
    // no-SA_RESTART signal. The injected poll failure must surface as
    // a connect error — no hang, no half-open fd.
    struct sigaction sa = {};
    struct sigaction old = {};
    sa.sa_handler = &sigusr1Noop;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // connect() must return EINTR, not restart.
    ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

    const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(lfd, 0);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(lfd, 0), 0); // Smallest possible accept queue.
    const uint16_t port = boundPort(lfd);

    // Fill the queue with connects nobody accepts (non-blocking, so
    // the fillers themselves cannot hang the test).
    std::vector<int> fillers;
    addr.sin_port = htons(port);
    for (int i = 0; i < 16; ++i) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        ASSERT_TRUE(setNonBlocking(fd));
        (void)::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr));
        fillers.push_back(fd);
    }

    GlobalFaultGuard guard("net.connect.poll:once:1:EIO");
    std::atomic<bool> done{false};
    pthread_t main_thread = pthread_self();
    std::thread pinger([&done, main_thread] {
        for (int i = 0; i < 2000 && !done.load(); ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            pthread_kill(main_thread, SIGUSR1);
        }
    });
    std::string err;
    const int fd = connectTcp("127.0.0.1", port, &err);
    done.store(true);
    pinger.join();
    EXPECT_EQ(fd, -1);
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(FaultInjector::global().injected("net.connect.poll"), 1u);

    for (const int f : fillers)
        closeSocket(f);
    closeSocket(lfd);
    sigaction(SIGUSR1, &old, nullptr);
}

// ------------------------------------------- poller fault injection

TEST(PollerFaults, EpollCreateFailureFailsInit)
{
    GlobalFaultGuard guard("server.epoll.create:once:1:EMFILE");
    Poller poller;
    std::string err;
    EXPECT_FALSE(poller.init(Poller::Kind::Epoll, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_EQ(FaultInjector::global().injected("server.epoll.create"),
              1u);
}

TEST(PollerFaults, EpollCtlFailureReportsAddError)
{
    Poller poller;
    std::string err;
    ASSERT_TRUE(poller.init(Poller::Kind::Epoll, &err)) << err;
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    {
        GlobalFaultGuard guard("server.epoll.ctl:once:1:ENOMEM");
        EXPECT_FALSE(poller.add(fds[0], true, false));
    }
    EXPECT_TRUE(poller.add(fds[0], true, false));
    poller.del(fds[0]);
    ::close(fds[0]);
    ::close(fds[1]);
}

#endif // __linux__

} // namespace
} // namespace mse

#include <gtest/gtest.h>

#include "mapping/mapping_io.hpp"
#include "model/cost_model.hpp"
#include "test_helpers.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

TEST(MappingIo, RoundTripRandomMappings)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = accelB();
    MapSpace space(wl, arch);
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        const Mapping m = space.randomMapping(rng);
        const auto parsed = parseMapping(serializeMapping(m));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(serializeMapping(*parsed), serializeMapping(m));
        EXPECT_EQ(validateMapping(wl, arch, *parsed), MappingError::Ok);
        // Cost is identical after a round trip.
        EXPECT_DOUBLE_EQ(CostModel::evaluate(wl, arch, *parsed).edp,
                         CostModel::evaluate(wl, arch, m).edp);
    }
}

TEST(MappingIo, RoundTripPreservesBypass)
{
    const Workload wl = test::tinyGemm();
    Mapping m(2, wl.numDims());
    for (int d = 0; d < wl.numDims(); ++d)
        m.level(1).temporal[d] = wl.bound(d);
    m.setKeep(0, 1, false, wl.numTensors());
    const auto parsed = parseMapping(serializeMapping(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(parsed->keeps(0, 1));
    EXPECT_TRUE(parsed->keeps(0, 0));
}

TEST(MappingIo, FormatIsStable)
{
    Mapping m(2, 2);
    m.level(0).temporal = {2, 1};
    m.level(1).temporal = {3, 4};
    m.level(0).order = {1, 0};
    EXPECT_EQ(serializeMapping(m),
              "v1;L=2;D=2;lvl t2,1 s1,1 o1,0;lvl t3,4 s1,1 o0,1");
}

TEST(MappingIo, ParsesKnownGoodString)
{
    const auto m =
        parseMapping("v1;L=2;D=2;lvl t2,1 s1,1 o1,0;lvl t3,4 s1,1 o0,1");
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->numLevels(), 2);
    EXPECT_EQ(m->numDims(), 2);
    EXPECT_EQ(m->level(0).temporal[0], 2);
    EXPECT_EQ(m->level(1).temporal[1], 4);
    EXPECT_EQ(m->level(0).order, (std::vector<int>{1, 0}));
}

struct BadInput
{
    const char *text;
    const char *why;
};

class MappingIoRejectsP : public ::testing::TestWithParam<BadInput>
{
};

TEST_P(MappingIoRejectsP, MalformedInput)
{
    EXPECT_FALSE(parseMapping(GetParam().text).has_value())
        << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MappingIoRejectsP,
    ::testing::Values(
        BadInput{"", "empty"},
        BadInput{"v2;L=1;D=1;lvl t1 s1 o0", "wrong version"},
        BadInput{"v1;L=2;D=2;lvl t2,1 s1,1 o1,0", "missing level"},
        BadInput{"v1;L=1;D=2;lvl t2 s1,1 o1,0", "short factor list"},
        BadInput{"v1;L=1;D=2;lvl t2,1 s1,1 o1,1", "not a permutation"},
        BadInput{"v1;L=1;D=2;lvl t0,1 s1,1 o0,1", "zero factor"},
        BadInput{"v1;L=1;D=2;lvl t2,x s1,1 o0,1", "non-numeric"},
        BadInput{"v1;L=1;D=2;lvl s1,1 o0,1", "missing temporal"},
        BadInput{"v1;L=1;D=2;lvl t1,1 s1,1 o0,1 k2,0,1", "bad keep bit"},
        BadInput{"v1;L=0;D=2", "no levels"}));

TEST(MappingIo, ExtraLevelRejected)
{
    EXPECT_FALSE(parseMapping("v1;L=1;D=1;lvl t1 s1 o0;lvl t1 s1 o0")
                     .has_value());
}

} // namespace
} // namespace mse

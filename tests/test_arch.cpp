#include <gtest/gtest.h>

#include "arch/arch.hpp"

namespace mse {
namespace {

TEST(ArchPresets, AccelAMatchesTable1)
{
    const ArchConfig a = accelA();
    ASSERT_EQ(a.numLevels(), 3);
    EXPECT_EQ(a.levels[0].name, "L1");
    EXPECT_EQ(a.levels[0].capacity_words, 64 * 1024 / 2); // 64 KB
    EXPECT_EQ(a.levels[0].fanout, 1);                     // 1 ALU/PE
    EXPECT_EQ(a.levels[1].capacity_words, 512 * 1024 / 2);
    EXPECT_EQ(a.levels[1].fanout, 256);                   // 256 PEs
    EXPECT_EQ(a.levels[2].capacity_words, 0);             // DRAM unbounded
    EXPECT_EQ(a.totalComputeUnits(), 256);
}

TEST(ArchPresets, AccelBMatchesTable1)
{
    const ArchConfig b = accelB();
    EXPECT_EQ(b.levels[0].capacity_words, 256 / 2); // 256 B
    EXPECT_EQ(b.levels[0].fanout, 4);               // 4 ALUs/PE
    EXPECT_EQ(b.levels[1].capacity_words, 64 * 1024 / 2);
    EXPECT_EQ(b.levels[1].fanout, 256);
    EXPECT_EQ(b.totalComputeUnits(), 1024);
}

TEST(ArchPresets, EnergyGrowsWithCapacity)
{
    const ArchConfig a = accelA();
    const ArchConfig b = accelB();
    // Accel-A's 64 KB L1 costs more per access than Accel-B's 256 B L1.
    EXPECT_GT(a.levels[0].read_energy_pj, b.levels[0].read_energy_pj);
    // DRAM dominates all SRAM levels.
    for (int l = 0; l < 2; ++l) {
        EXPECT_GT(a.levels[2].read_energy_pj, a.levels[l].read_energy_pj);
    }
}

TEST(ArchConfig, InstancesOfLevel)
{
    const ArchConfig b = accelB();
    EXPECT_EQ(b.instancesOfLevel(0), 256); // one L1 per PE
    EXPECT_EQ(b.instancesOfLevel(1), 1);   // one global L2
    EXPECT_EQ(b.instancesOfLevel(2), 1);   // one DRAM
}

TEST(MakeNpu, Parameterized)
{
    const ArchConfig c = makeNpu("c", 1024, 64, 8, 2);
    EXPECT_EQ(c.levels[1].capacity_words, 512);
    EXPECT_EQ(c.levels[0].capacity_words, 32);
    EXPECT_EQ(c.totalComputeUnits(), 16);
    EXPECT_TRUE(c.levels[1].multicast);
}

} // namespace
} // namespace mse

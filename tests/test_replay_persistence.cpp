#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/replay_buffer.hpp"
#include "mapping/map_space.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

class ReplayPersistenceTest : public ::testing::Test
{
  protected:
    std::string path_ = ::testing::TempDir() + "/mse_replay_test.txt";

    void TearDown() override { std::remove(path_.c_str()); }

    static CostResult
    evalDense(const Workload &wl, const Mapping &m)
    {
        return CostModel::evaluate(wl, accelB(), m);
    }

    ReplayBuffer
    populated()
    {
        ReplayBuffer buf;
        Rng rng(1);
        for (const Workload &wl : {resnetConv3(), resnetConv4()}) {
            MapSpace space(wl, accelB());
            const Mapping m = space.randomMapping(rng);
            buf.push(wl, m, evalDense(wl, m));
        }
        return buf;
    }
};

TEST_F(ReplayPersistenceTest, SaveLoadRoundTrip)
{
    ReplayBuffer buf = populated();
    ASSERT_TRUE(buf.save(path_));

    ReplayBuffer fresh;
    const size_t n = fresh.load(path_, evalDense);
    EXPECT_EQ(n, 2u);
    ASSERT_EQ(fresh.size(), 2u);
    EXPECT_EQ(fresh.entries()[0].workload.name(), "resnet_conv3");
    EXPECT_EQ(fresh.entries()[1].workload.name(), "resnet_conv4");
    // Costs re-derived on load match the originals.
    EXPECT_DOUBLE_EQ(fresh.entries()[0].cost.edp,
                     buf.entries()[0].cost.edp);
}

TEST_F(ReplayPersistenceTest, LoadedEntriesServeWarmStartLookups)
{
    populated().save(path_);
    ReplayBuffer fresh;
    fresh.load(path_, evalDense);
    const auto hit = fresh.mostSimilar(resnetConv4());
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->workload.name(), "resnet_conv4");
}

TEST_F(ReplayPersistenceTest, LoadSkipsCorruptLines)
{
    populated().save(path_);
    {
        std::ofstream out(path_, std::ios::app);
        out << "garbage workload line\n" << "garbage mapping line\n";
    }
    ReplayBuffer fresh;
    EXPECT_EQ(fresh.load(path_, evalDense), 2u);
}

TEST_F(ReplayPersistenceTest, LoadFromMissingFileReturnsZero)
{
    ReplayBuffer fresh;
    EXPECT_EQ(fresh.load("/nonexistent_zzz/replay.txt", evalDense), 0u);
    EXPECT_TRUE(fresh.empty());
}

TEST_F(ReplayPersistenceTest, SaveToBadPathFails)
{
    EXPECT_FALSE(populated().save("/nonexistent_zzz/replay.txt"));
}

TEST_F(ReplayPersistenceTest, LoadAppendsToExistingEntries)
{
    populated().save(path_);
    ReplayBuffer buf;
    Rng rng(7);
    MapSpace space(inceptionConv2(), accelB());
    const Mapping m = space.randomMapping(rng);
    buf.push(inceptionConv2(), m, evalDense(inceptionConv2(), m));
    buf.load(path_, evalDense);
    EXPECT_EQ(buf.size(), 3u);
}

} // namespace
} // namespace mse

#include <gtest/gtest.h>

#include "mappers/gamma.hpp"
#include "model/cost_model.hpp"
#include "workload/model_zoo.hpp"

namespace mse {
namespace {

ArchConfig
deepNpu()
{
    return makeDeepNpu("deep", 64 * 1024, 2048, 64, 64, 4);
}

TEST(DeepHierarchy, FourLevelsWired)
{
    const ArchConfig arch = deepNpu();
    ASSERT_EQ(arch.numLevels(), 4);
    EXPECT_EQ(arch.levels[0].name, "Regs");
    EXPECT_EQ(arch.levels[1].name, "L1");
    EXPECT_EQ(arch.levels[3].name, "DRAM");
    EXPECT_EQ(arch.totalComputeUnits(), 64 * 4);
    EXPECT_EQ(arch.levels[0].fanout, 4);
    EXPECT_EQ(arch.levels[2].fanout, 64);
}

TEST(DeepHierarchy, RandomMappingsLegal)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = deepNpu();
    MapSpace space(wl, arch);
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        const Mapping m = space.randomMapping(rng);
        ASSERT_EQ(validateMapping(wl, arch, m), MappingError::Ok);
    }
}

TEST(DeepHierarchy, CostModelProducesSaneResults)
{
    const Workload wl = resnetConv4();
    const ArchConfig arch = deepNpu();
    MapSpace space(wl, arch);
    Rng rng(2);
    for (int i = 0; i < 50; ++i) {
        const CostResult r =
            CostModel::evaluate(wl, arch, space.randomMapping(rng));
        ASSERT_TRUE(r.valid);
        EXPECT_GT(r.energy_uj, 0.0);
        EXPECT_GE(r.latency_cycles, r.compute_cycles);
        EXPECT_LE(r.utilization, 1.0 + 1e-12);
        ASSERT_EQ(r.level_energy_uj.size(), 4u);
    }
}

TEST(DeepHierarchy, RegisterLevelCapturesReuse)
{
    // A register level between L1 and the MACs should reduce L1 reads
    // relative to a 3-level machine with the same upper levels, for the
    // same logical tiling (registers absorb innermost reuse).
    const Workload wl = makeGemm("g", 1, 16, 16, 16);
    const ArchConfig deep = makeDeepNpu("deep", 1 << 16, 1 << 12, 64,
                                        1, 1);
    const ArchConfig flat = makeNpu("flat", 1 << 16, 1 << 12, 1, 1);

    // All loops at the top, identity orders.
    Mapping md(deep.numLevels(), wl.numDims());
    for (int d = 0; d < wl.numDims(); ++d)
        md.level(deep.numLevels() - 1).temporal[d] = wl.bound(d);
    Mapping mf(flat.numLevels(), wl.numDims());
    for (int d = 0; d < wl.numDims(); ++d)
        mf.level(flat.numLevels() - 1).temporal[d] = wl.bound(d);

    ASSERT_EQ(validateMapping(wl, deep, md), MappingError::Ok);
    ASSERT_EQ(validateMapping(wl, flat, mf), MappingError::Ok);
    const AccessCounts cd = computeAccessCounts(wl, deep, md);
    const AccessCounts cf = computeAccessCounts(wl, flat, mf);
    // L1 is level 1 in the deep machine, level 0 in the flat one; total
    // MAC-side traffic must not increase with the extra level.
    double deep_l1 = 0, flat_l1 = 0;
    for (int t = 0; t < wl.numTensors(); ++t) {
        deep_l1 += cd.access[1][t].reads;
        flat_l1 += cf.access[0][t].reads;
    }
    EXPECT_LE(deep_l1, flat_l1 + 1e-9);
}

TEST(DeepHierarchy, GammaSearchesDeepSpaces)
{
    const Workload wl = resnetConv3();
    const ArchConfig arch = deepNpu();
    MapSpace space(wl, arch);
    EvalFn eval = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };
    GammaMapper gamma;
    SearchBudget budget;
    budget.max_samples = 1000;
    Rng rng(3);
    const SearchResult r = gamma.search(space, eval, budget, rng);
    ASSERT_TRUE(r.found());
    EXPECT_EQ(validateMapping(wl, arch, r.best_mapping), MappingError::Ok);
    EXPECT_LT(r.best_cost.edp, r.log.best_edp_per_sample.front());
}

TEST(DeepHierarchy, MapSpaceIsLargerThanShallow)
{
    const Workload wl = resnetConv4();
    MapSpace deep_space(wl, deepNpu());
    MapSpace flat_space(wl, accelB());
    EXPECT_GT(deep_space.size().log10_total,
              flat_space.size().log10_total);
}

} // namespace
} // namespace mse

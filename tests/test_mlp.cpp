#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/mlp.hpp"

namespace mse {
namespace {

TEST(Mlp, ShapesAreWired)
{
    Rng rng(1);
    Mlp net({3, 8, 2}, rng);
    EXPECT_EQ(net.inputSize(), 3);
    EXPECT_EQ(net.outputSize(), 2);
    const auto y = net.forward({0.1, 0.2, 0.3});
    EXPECT_EQ(y.size(), 2u);
}

TEST(Mlp, FitsLinearFunction)
{
    Rng rng(2);
    Mlp net({2, 16, 1}, rng);
    std::vector<std::vector<double>> xs, ys;
    for (int i = 0; i < 256; ++i) {
        const double a = rng.uniformReal(-1, 1);
        const double b = rng.uniformReal(-1, 1);
        xs.push_back({a, b});
        ys.push_back({2.0 * a - 0.5 * b + 0.3});
    }
    double loss = 0;
    for (int epoch = 0; epoch < 400; ++epoch)
        loss = net.trainBatch(xs, ys, 1e-2);
    EXPECT_LT(loss, 5e-3);
    EXPECT_NEAR(net.forward({0.5, -0.5})[0], 1.55, 0.1);
}

TEST(Mlp, FitsNonlinearFunction)
{
    // XOR-like target requires the hidden layer.
    Rng rng(3);
    Mlp net({2, 16, 16, 1}, rng);
    const std::vector<std::vector<double>> xs = {
        {0, 0}, {0, 1}, {1, 0}, {1, 1}};
    const std::vector<std::vector<double>> ys = {{0}, {1}, {1}, {0}};
    double loss = 0;
    for (int epoch = 0; epoch < 1500; ++epoch)
        loss = net.trainBatch(xs, ys, 5e-3);
    EXPECT_LT(loss, 1e-2);
    EXPECT_GT(net.forward({0, 1})[0], 0.7);
    EXPECT_LT(net.forward({1, 1})[0], 0.3);
}

TEST(Mlp, InputGradientMatchesFiniteDifference)
{
    Rng rng(4);
    Mlp net({4, 12, 6, 2}, rng);
    const std::vector<double> x = {0.3, -0.2, 0.7, 0.1};
    for (int out = 0; out < 2; ++out) {
        const auto g = net.inputGradient(x, out);
        ASSERT_EQ(g.size(), x.size());
        const double eps = 1e-6;
        for (size_t i = 0; i < x.size(); ++i) {
            auto xp = x, xm = x;
            xp[i] += eps;
            xm[i] -= eps;
            const double fd = (net.forward(xp)[out] -
                               net.forward(xm)[out]) / (2 * eps);
            EXPECT_NEAR(g[i], fd, 1e-5)
                << "output " << out << " input " << i;
        }
    }
}

TEST(Mlp, TrainingReducesLoss)
{
    Rng rng(5);
    Mlp net({3, 10, 1}, rng);
    std::vector<std::vector<double>> xs, ys;
    for (int i = 0; i < 64; ++i) {
        xs.push_back({rng.uniformReal(), rng.uniformReal(),
                      rng.uniformReal()});
        ys.push_back({xs.back()[0] * xs.back()[1] + xs.back()[2]});
    }
    const double first = net.trainBatch(xs, ys, 1e-3);
    double last = first;
    for (int epoch = 0; epoch < 100; ++epoch)
        last = net.trainBatch(xs, ys, 1e-3);
    EXPECT_LT(last, first * 0.5);
}

TEST(Mlp, DeterministicGivenSeed)
{
    Rng rng1(7), rng2(7);
    Mlp a({2, 4, 1}, rng1);
    Mlp b({2, 4, 1}, rng2);
    EXPECT_DOUBLE_EQ(a.forward({0.1, 0.9})[0], b.forward({0.1, 0.9})[0]);
}

} // namespace
} // namespace mse

/**
 * @file
 * Sparse-workload mapping for BERT-large on a flexible sparse NPU.
 *
 * Demonstrates the two sparse capabilities of the library (Secs. 4.5 and
 * 5.2 of the paper):
 *  1. a weight-sparsity sweep of one encoder GEMM, showing how the
 *     optimized mapping and its dataflow style change with density, and
 *  2. a sparsity-aware search that returns ONE mapping robust across the
 *     dynamic activation-density range 1.0-0.1, compared against a
 *     dense-tuned mapping.
 *
 *   ./build/examples/sparse_bert [samples]
 */
#include <cstdio>
#include <cstdlib>

#include "core/sparsity_aware.hpp"
#include "mappers/gamma.hpp"
#include "sparse/sparse_model.hpp"
#include "workload/model_zoo.hpp"

using namespace mse;

namespace {

SearchResult
run(const MapSpace &space, const EvalFn &eval, size_t samples,
    uint64_t seed)
{
    GammaConfig cfg;
    cfg.multi_objective = false;
    GammaMapper gamma(cfg);
    SearchBudget budget;
    budget.max_samples = samples;
    Rng rng(seed);
    return gamma.search(space, eval, budget, rng);
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t samples = argc > 1
        ? static_cast<size_t>(std::strtoull(argv[1], nullptr, 10))
        : 3000;
    const ArchConfig arch = accelB();
    const SparseCostModel model;

    // 1. Weight-sparsity sweep on the KQV projection GEMM.
    std::printf("=== Weight sparsity sweep: %s on %s ===\n",
                bertKqv().toString().c_str(), arch.name.c_str());
    std::printf("%-10s %12s %12s %14s\n", "density", "EDP", "energy(uJ)",
                "dataflow-style");
    for (double density : {1.0, 0.5, 0.1, 0.01}) {
        Workload wl = bertKqv();
        applyDensities(wl, density, 1.0);
        MapSpace space(wl, arch);
        EvalFn eval = [&](const Mapping &m) {
            return model.evaluate(wl, arch, m);
        };
        const SearchResult r = run(space, eval, samples, 7);
        const double innerness =
            reductionInnerness(wl, r.best_mapping);
        std::printf("%-10.2f %12.3e %12.3e %11.0f%% inner\n", density,
                    r.best_cost.edp, r.best_cost.energy_uj,
                    100.0 * innerness);
    }

    // 2. Sparsity-aware mapping for dynamic activation sparsity.
    std::printf("\n=== Sparsity-aware mapping: %s ===\n",
                bertAttn().toString().c_str());
    const Workload wl = bertAttn();
    MapSpace space(wl, arch);

    SparsityAwareConfig cfg; // searches densities {1.0,0.8,0.5,0.2,0.1}
    const SearchResult aware =
        run(space, makeSparsityAwareEvaluator(space, model, cfg),
            samples, 11);
    const SearchResult dense_tuned =
        run(space, makeStaticDensityEvaluator(space, model, 1.0),
            samples, 13);

    std::printf("%-18s %14s %14s\n", "tested density", "sparsity-aware",
                "dense-tuned");
    for (double d : {1.0, 0.7, 0.4, 0.2, 0.1, 0.05}) {
        const EvalFn at = makeStaticDensityEvaluator(space, model, d);
        std::printf("%-18.2f %14.3e %14.3e\n", d,
                    at(aware.best_mapping).edp,
                    at(dense_tuned.best_mapping).edp);
    }
    std::printf("\nOne fixed sparsity-aware mapping serves the whole "
                "dynamic range; the dense-tuned mapping degrades as "
                "activations get sparser.\n");
    return 0;
}

/**
 * @file
 * Quickstart: map one ResNet CONV layer onto the Accel-B NPU with the
 * Gamma mapper and print the optimized mapping and its cost.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "core/mse_engine.hpp"
#include "mappers/gamma.hpp"
#include "model/analysis.hpp"
#include "workload/model_zoo.hpp"

int
main()
{
    using namespace mse;

    // 1. Pick a workload and an accelerator.
    const Workload wl = resnetConv4(); // CONV2D(16,256,256,14,14,3,3)
    const ArchConfig arch = accelB();  // 256 PEs x 4 ALUs, 64KB L2

    std::printf("Workload:    %s\n", wl.toString().c_str());
    std::printf("Accelerator: %s (%lld ALUs)\n", arch.name.c_str(),
                static_cast<long long>(arch.totalComputeUnits()));

    const MapSpace space(wl, arch);
    const auto sz = space.size();
    std::printf("Map space:   ~10^%.1f mappings "
                "(tile 10^%.1f x order 10^%.1f x parallel 10^%.1f)\n\n",
                sz.log10_total, sz.log10_tile, sz.log10_order,
                sz.log10_parallel);

    // 2. Run MSE with the Gamma mapper.
    MseEngine engine(arch);
    GammaMapper gamma;
    MseOptions opts;
    opts.budget.max_samples = 2000;
    Rng rng(1);

    const MseOutcome outcome = engine.optimize(wl, gamma, opts, rng);

    // 3. Report.
    const auto &best = outcome.search.best_cost;
    std::printf("Best mapping found by %s after %zu samples:\n%s\n",
                gamma.name().c_str(), outcome.search.log.samples,
                outcome.search.best_mapping.toString(wl).c_str());
    std::printf("EDP:         %.3e cycles*uJ\n", best.edp);
    std::printf("Latency:     %.3e cycles\n", best.latency_cycles);
    std::printf("Energy:      %.3e uJ\n", best.energy_uj);
    std::printf("Utilization: %.1f%% of ALUs\n", best.utilization * 100);
    std::printf("Dataflow:    %s, %.1f MACs/DRAM-word\n",
                stationarityName(
                    classifyStationarity(wl, outcome.search.best_mapping)),
                arithmeticIntensity(wl, arch,
                                    outcome.search.best_mapping));
    std::printf("Converged after %zu of %zu generations\n",
                outcome.generations_to_converge,
                outcome.search.log.best_edp_per_generation.size());
    std::printf("Pareto frontier holds %zu points\n",
                outcome.pareto.entries().size());
    return 0;
}

/**
 * @file
 * Map a user-specified CONV2D or GEMM onto a user-sized NPU, comparing
 * all three mapper families — the "bring your own layer" entry point of
 * the library.
 *
 * Usage:
 *   ./build/examples/custom_workload conv B K C Y X R S
 *   ./build/examples/custom_workload gemm B M K N
 * Optional trailing args: [num_pes] [l2_kb] [l1_bytes] [samples]
 * Defaults: a 256-PE, 64 KB-L2, 256 B-L1 NPU (Accel-B-like), 2000
 * samples.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "mappers/gamma.hpp"
#include "mappers/mind_mappings.hpp"
#include "mappers/random_pruned.hpp"
#include "workload/workload.hpp"

using namespace mse;

namespace {

int64_t
arg(int argc, char **argv, int i, int64_t def)
{
    return i < argc ? std::strtoll(argv[i], nullptr, 10) : def;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s conv B K C Y X R S | gemm B M K N\n",
                     argv[0]);
        return 1;
    }

    Workload wl;
    int next;
    if (std::strcmp(argv[1], "conv") == 0 && argc >= 9) {
        wl = makeConv2d("custom_conv", arg(argc, argv, 2, 1),
                        arg(argc, argv, 3, 1), arg(argc, argv, 4, 1),
                        arg(argc, argv, 5, 1), arg(argc, argv, 6, 1),
                        arg(argc, argv, 7, 1), arg(argc, argv, 8, 1));
        next = 9;
    } else if (std::strcmp(argv[1], "gemm") == 0 && argc >= 6) {
        wl = makeGemm("custom_gemm", arg(argc, argv, 2, 1),
                      arg(argc, argv, 3, 1), arg(argc, argv, 4, 1),
                      arg(argc, argv, 5, 1));
        next = 6;
    } else {
        std::fprintf(stderr,
                     "usage: %s conv B K C Y X R S | gemm B M K N\n",
                     argv[0]);
        return 1;
    }

    const int64_t pes = arg(argc, argv, next, 256);
    const int64_t l2_kb = arg(argc, argv, next + 1, 64);
    const int64_t l1_b = arg(argc, argv, next + 2, 256);
    const size_t samples =
        static_cast<size_t>(arg(argc, argv, next + 3, 2000));

    const ArchConfig arch =
        makeNpu("custom-npu", l2_kb * 1024, l1_b, pes, 4);
    MapSpace space(wl, arch);
    const auto sz = space.size();
    std::printf("%s on %s (%lld PEs, %lld KB L2, %lld B L1)\n",
                wl.toString().c_str(), arch.name.c_str(),
                static_cast<long long>(pes),
                static_cast<long long>(l2_kb),
                static_cast<long long>(l1_b));
    std::printf("Map space ~10^%.1f; budget %zu samples per mapper\n\n",
                sz.log10_total, samples);

    EvalFn eval = [&](const Mapping &m) {
        return CostModel::evaluate(wl, arch, m);
    };

    std::vector<std::unique_ptr<Mapper>> mappers;
    mappers.push_back(std::make_unique<RandomPrunedMapper>());
    mappers.push_back(std::make_unique<GammaMapper>());
    {
        SurrogateConfig scfg;
        scfg.train_samples = 1500;
        Rng srng(1);
        auto sur = std::make_shared<const MindMappingsSurrogate>(
            arch, std::vector<Workload>{wl}, scfg, srng);
        mappers.push_back(std::make_unique<MindMappingsMapper>(sur));
    }

    const Mapping *best_mapping = nullptr;
    double best_edp = std::numeric_limits<double>::infinity();
    std::vector<SearchResult> results;
    results.reserve(mappers.size());
    std::printf("%-16s %12s %12s %12s %8s\n", "mapper", "EDP", "latency",
                "energy(uJ)", "util%");
    for (auto &m : mappers) {
        SearchBudget budget;
        budget.max_samples = samples;
        Rng rng(5);
        results.push_back(m->search(space, eval, budget, rng));
        const auto &r = results.back();
        std::printf("%-16s %12.3e %12.3e %12.3e %7.1f%%\n",
                    m->name().c_str(), r.best_cost.edp,
                    r.best_cost.latency_cycles, r.best_cost.energy_uj,
                    100.0 * r.best_cost.utilization);
        if (r.found() && r.best_cost.edp < best_edp) {
            best_edp = r.best_cost.edp;
            best_mapping = &results.back().best_mapping;
        }
    }
    if (best_mapping) {
        std::printf("\nBest mapping found:\n%s",
                    best_mapping->toString(wl).c_str());
    }
    return 0;
}

/**
 * @file
 * Whole-model mapping pipeline: optimize every layer of ResNet-18 on
 * Accel-B the way a compiler would — sequentially, with warm-start
 * reusing each optimized layer as the starting point for the next
 * (Sec. 5.1 of the paper). Prints per-layer results and the end-to-end
 * totals, then contrasts against cold-started MSE.
 *
 *   ./build/examples/resnet_pipeline [samples_per_layer]
 */
#include <cstdio>
#include <cstdlib>

#include "core/mse_engine.hpp"
#include "mappers/gamma.hpp"
#include "workload/model_zoo.hpp"

int
main(int argc, char **argv)
{
    using namespace mse;
    const size_t samples = argc > 1
        ? static_cast<size_t>(std::strtoull(argv[1], nullptr, 10))
        : 2000;

    const ArchConfig arch = accelB();
    const auto layers = resnet18Layers();

    std::printf("Mapping %zu ResNet-18 layers onto %s "
                "(%zu samples/layer)\n\n",
                layers.size(), arch.name.c_str(), samples);
    std::printf("%-22s %12s %12s %12s %10s\n", "layer", "EDP", "latency",
                "energy(uJ)", "gens-used");

    MseEngine engine(arch);
    GammaMapper gamma;
    Rng rng(42);

    double total_latency = 0.0, total_energy = 0.0;
    double warm_samples = 0.0;
    for (const auto &wl : layers) {
        MseOptions opts;
        opts.budget.max_samples = samples;
        opts.warm_start = WarmStartStrategy::BySimilarity;
        const MseOutcome out = engine.optimize(wl, gamma, opts, rng);
        const auto &best = out.search.best_cost;
        std::printf("%-22s %12.3e %12.3e %12.3e %10zu\n",
                    wl.name().c_str(), best.edp, best.latency_cycles,
                    best.energy_uj, out.generations_to_converge);
        total_latency += best.latency_cycles;
        total_energy += best.energy_uj;
        warm_samples += static_cast<double>(out.search.log.samples);
    }
    std::printf("\nModel totals: %.3e cycles, %.3e uJ "
                "(%0.f cost-model queries)\n",
                total_latency, total_energy, warm_samples);

    // The same pipeline without warm-start, for comparison.
    MseEngine cold_engine(arch);
    double cold_latency = 0.0, cold_energy = 0.0;
    Rng cold_rng(42);
    for (const auto &wl : layers) {
        MseOptions opts;
        opts.budget.max_samples = samples;
        const MseOutcome out =
            cold_engine.optimize(wl, gamma, opts, cold_rng);
        cold_latency += out.search.best_cost.latency_cycles;
        cold_energy += out.search.best_cost.energy_uj;
    }
    std::printf("Cold-start totals: %.3e cycles, %.3e uJ\n", cold_latency,
                cold_energy);
    std::printf("Warm-start quality vs cold: %.1f%% latency, "
                "%.1f%% energy (expected ~100%%; the win is "
                "convergence speed, see Fig. 11)\n",
                100.0 * total_latency / cold_latency,
                100.0 * total_energy / cold_energy);
    return 0;
}
